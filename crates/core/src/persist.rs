//! Compact binary persistence for trained models.
//!
//! Wearable deployments flash a trained model onto the device; this module
//! provides the byte format. The dependency policy for this reproduction
//! admits `serde` but no serializer crate, so the codec is hand-rolled:
//! little-endian, length-prefixed, with a magic header and version byte so
//! stale blobs fail loudly instead of mis-deserializing.
//!
//! ```text
//! blob     := magic:u32 version:u8 kind:u8 payload
//! matrix   := rows:u64 cols:u64 f32[rows·cols]
//! vec<f32> := len:u64 f32[len]
//! vec<u64> := len:u64 u64[len]          (v2+)
//! vec<i8>  := len:u64 i8[len]           (v4+)
//! packed   := rows:u64 dim:u64 vec<u64> (v2+, bitpacked sign matrices)
//! i8rows   := rows:u64 cols:u64 vec<f32> vec<i8>  (v4+, scaled int8 rows)
//! encoder  := matrix vec<f32>           (stored projection + bias)
//!           | remat:u64(=u64::MAX) dim:u64 input_len:u64 bandwidth:f32
//!             seed:u64                  (v4+, rematerialized recipe)
//! ```
//!
//! The same grammar also serializes in a **heap-mode** split (see
//! [`Writer::new_with_heap`]): every length-prefixed array body moves to a
//! separate 8-byte-aligned payload heap and the structure stream records
//! its heap offset instead. The fleet model store persists records in
//! that split so the bulk payloads (f32 projections and class matrices,
//! packed sign words, int8 grids) can be served zero-copy out of a loaded
//! blob; plain `.bhd` file blobs always use the inline layout above.
//!
//! Version history: **v1** stored only the dense-f32 models (kinds 1–2);
//! **v2** adds the bitpacked inference models (kinds 3–4); **v3** adds the
//! centroid model (kind 5); **v4** adds the scaled-int8 inference models
//! (kinds 6–7) and the rematerialized-encoder recipe (a `u64::MAX` row
//! sentinel where a stored projection's row count would sit, so
//! stored-encoder payloads stay byte-identical to v1). Every version keeps
//! the earlier layouts unchanged, so old blobs remain readable.
//!
//! # Example
//!
//! ```
//! use boosthd::{OnlineHd, OnlineHdConfig, Classifier};
//! use linalg::{Matrix, Rng64};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::seed_from(1);
//! let x = Matrix::random_normal(40, 3, &mut rng);
//! let y: Vec<usize> = (0..40).map(|i| i % 2).collect();
//! let config = OnlineHdConfig { dim: 64, epochs: 2, ..Default::default() };
//! let model = OnlineHd::fit(&config, &x, &y)?;
//!
//! let bytes = model.to_bytes();
//! let restored = OnlineHd::from_bytes(&bytes)?;
//! assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
//! # Ok(())
//! # }
//! ```

use crate::boost::{BoostHd, BoostHdConfig, EnsembleMode, SampleMode, Voting};
use crate::classifier::Classifier;
use crate::error::{BoostHdError, Result};
use crate::online::{OnlineHd, OnlineHdConfig};
use crate::quantized::{QuantizedBoostHd, QuantizedHd, QuantizedWeakLearner};
use crate::quantized_i8::{I8Rows, QuantizedI8BoostHd, QuantizedI8Hd, QuantizedI8WeakLearner};
use hdc::backend::PackedMatrix;
use hdc::encoder::{RematSpec, SinusoidEncoder};
use linalg::{Blob, Matrix, SharedSlice, Storage};
use std::sync::Arc;

/// `"BHD1"` little-endian.
const MAGIC: u32 = 0x3144_4842;
/// Bump on any incompatible layout change; readers accept every version
/// back to [`MIN_VERSION`] whose layout for the requested kind is known.
const VERSION: u8 = 4;
/// Oldest readable blob version.
const MIN_VERSION: u8 = 1;
const KIND_ONLINE: u8 = 1;
const KIND_BOOST: u8 = 2;
/// Bitpacked single-learner model ([`QuantizedHd`]); requires v2.
const KIND_QUANT_ONLINE: u8 = 3;
/// Bitpacked boosted ensemble ([`QuantizedBoostHd`]); requires v2.
const KIND_QUANT_BOOST: u8 = 4;
/// Single-pass centroid model ([`crate::CentroidHd`]); requires v3.
const KIND_CENTROID: u8 = 5;
/// Scaled-int8 single-learner model ([`QuantizedI8Hd`]); requires v4.
const KIND_QUANT_I8_ONLINE: u8 = 6;
/// Scaled-int8 boosted ensemble ([`QuantizedI8BoostHd`]); requires v4.
const KIND_QUANT_I8_BOOST: u8 = 7;

/// Row-count sentinel marking a rematerialized-encoder recipe where a
/// stored projection's `rows:u64` would sit (no real projection has
/// `u64::MAX` rows, and v1–v3 readers fail loudly on it).
const REMAT_SENTINEL: u64 = u64::MAX;

/// Row-count sentinel marking a stored projection serialized as its F×D
/// *transpose* — the layout the encoder actually holds in memory. Only
/// heap-mode streams (the fleet model store) emit it, so plain BHD1 file
/// blobs stay byte-identical to v4; the transpose round trip is an exact
/// permutation, so either layout reloads to bit-identical encodings.
const STORED_T_SENTINEL: u64 = u64::MAX - 1;

fn persist_err(reason: impl Into<String>) -> BoostHdError {
    BoostHdError::DataMismatch {
        reason: reason.into(),
    }
}

/// Little-endian byte sink.
///
/// Two modes share every `put_*` call:
///
/// * **inline** ([`Writer::new`]) — array bodies are written in place,
///   producing the classic single-stream BHD1 layout;
/// * **heap** ([`Writer::new_with_heap`]) — every length-prefixed array
///   body is appended to a separate 8-byte-aligned *payload heap* and the
///   structure stream records its heap byte offset (`u64`) where the body
///   would sit. The fleet model store uses this split: the structure
///   stream is decoded normally while the bulk payloads are served
///   zero-copy straight out of the loaded blob.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    heap: Option<Vec<u8>>,
}

impl Writer {
    /// Creates an empty inline-mode writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty heap-mode writer (see the type docs).
    pub fn new_with_heap() -> Self {
        Self {
            buf: Vec::new(),
            heap: Some(Vec::new()),
        }
    }

    /// Whether this writer routes array bodies to a payload heap.
    pub fn has_heap(&self) -> bool {
        self.heap.is_some()
    }

    /// Finishes, returning the encoded bytes (inline mode).
    pub fn into_bytes(self) -> Vec<u8> {
        debug_assert!(self.heap.is_none(), "heap-mode writer needs into_parts");
        self.buf
    }

    /// Finishes a heap-mode writer, returning `(structure, heap)`. The
    /// heap half must land at an 8-byte-aligned offset of whatever record
    /// it is embedded in, so the recorded array offsets stay aligned for
    /// zero-copy reinterpretation.
    pub fn into_parts(self) -> (Vec<u8>, Vec<u8>) {
        (self.buf, self.heap.unwrap_or_default())
    }

    /// Pads the heap to an 8-byte boundary and returns the write offset.
    fn align_heap(&mut self) -> u64 {
        let heap = self.heap.as_mut().expect("heap-mode writer");
        while !heap.len().is_multiple_of(8) {
            heap.push(0);
        }
        heap.len() as u64
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        if self.heap.is_some() {
            let off = self.align_heap();
            let heap = self.heap.as_mut().expect("heap-mode writer");
            for &x in v {
                heap.extend_from_slice(&x.to_le_bytes());
            }
            self.put_u64(off);
        } else {
            for &x in v {
                self.put_f32(x);
            }
        }
    }

    /// Appends a length-prefixed `i8` slice (v4+).
    pub fn put_i8_slice(&mut self, v: &[i8]) {
        self.put_u64(v.len() as u64);
        if self.heap.is_some() {
            let off = self.align_heap();
            let heap = self.heap.as_mut().expect("heap-mode writer");
            heap.extend(v.iter().map(|&x| x as u8));
            self.put_u64(off);
        } else {
            self.buf.extend(v.iter().map(|&x| x as u8));
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        if self.heap.is_some() {
            let off = self.align_heap();
            let heap = self.heap.as_mut().expect("heap-mode writer");
            for &x in v {
                heap.extend_from_slice(&x.to_le_bytes());
            }
            self.put_u64(off);
        } else {
            for &x in v {
                self.put_u64(x);
            }
        }
    }

    /// Appends a shape-prefixed bitpacked matrix.
    pub fn put_packed_matrix(&mut self, m: &PackedMatrix) {
        self.put_u64(m.rows() as u64);
        self.put_u64(m.dim() as u64);
        self.put_u64_slice(m.as_words());
    }

    /// Appends a shape-prefixed matrix.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_u64(m.rows() as u64);
        self.put_u64(m.cols() as u64);
        if self.heap.is_some() {
            let off = self.align_heap();
            let heap = self.heap.as_mut().expect("heap-mode writer");
            for &x in m.as_slice() {
                heap.extend_from_slice(&x.to_le_bytes());
            }
            self.put_u64(off);
        } else {
            for &x in m.as_slice() {
                self.put_f32(x);
            }
        }
    }
}

/// The payload heap a shared-mode [`Reader`] resolves array references
/// against: a window of a reference-counted blob, kept alive by the
/// decoded models' zero-copy views.
#[derive(Debug)]
struct HeapSource {
    blob: Arc<Blob>,
    base: usize,
    len: usize,
}

/// Little-endian byte source with bounds checking.
///
/// The shared-mode constructor ([`Reader::new_shared`]) decodes structure
/// streams written by a heap-mode [`Writer`]: array reads resolve their
/// `u64` heap offsets against a reference-counted blob and — for the bulk
/// containers (matrices, packed words, int8 grids) — hand back zero-copy
/// views borrowing the blob instead of copied allocations.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    heap: Option<HeapSource>,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice (inline mode).
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            heap: None,
        }
    }

    /// Wraps a structure stream plus the blob window holding its payload
    /// heap. `heap_base` must be 8-byte aligned within the blob (the
    /// store's record layout guarantees this), or every array view will
    /// fail alignment validation.
    ///
    /// # Errors
    ///
    /// Fails when the heap window exceeds the blob.
    pub fn new_shared(
        data: &'a [u8],
        blob: Arc<Blob>,
        heap_base: usize,
        heap_len: usize,
    ) -> Result<Self> {
        if heap_base
            .checked_add(heap_len)
            .is_none_or(|end| end > blob.len())
        {
            return Err(persist_err(format!(
                "payload heap {heap_base}+{heap_len} exceeds blob of {} bytes",
                blob.len()
            )));
        }
        Ok(Self {
            data,
            pos: 0,
            heap: Some(HeapSource {
                blob,
                base: heap_base,
                len: heap_len,
            }),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| persist_err("truncated model blob"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// [`Reader::take`] for a counted array: validates `count × elem`
    /// against the bytes actually remaining *before* any allocation, so a
    /// corrupted length prefix yields a descriptive error instead of a
    /// multi-gigabyte reserve or an abort.
    fn take_elems(&mut self, count: usize, elem: usize, what: &str) -> Result<&'a [u8]> {
        let bytes = count
            .checked_mul(elem)
            .ok_or_else(|| persist_err(format!("{what} length {count} overflows")))?;
        let remaining = self.data.len() - self.pos;
        if bytes > remaining {
            return Err(persist_err(format!(
                "{what} claims {count} elements ({bytes} bytes) but only {remaining} bytes remain"
            )));
        }
        self.take(bytes)
    }

    /// Reads an array's heap offset and validates the referenced
    /// `count × elem` byte range against the heap window.
    fn heap_ref(&mut self, count: usize, elem: usize, what: &str) -> Result<usize> {
        let heap_len = self.heap.as_ref().expect("shared-mode reader").len;
        let off = self.get_len()?;
        let bytes = count
            .checked_mul(elem)
            .ok_or_else(|| persist_err(format!("{what} length {count} overflows")))?;
        if off.checked_add(bytes).is_none_or(|end| end > heap_len) {
            return Err(persist_err(format!(
                "{what} payload at {off}+{bytes} exceeds heap of {heap_len} bytes"
            )));
        }
        Ok(off)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` that must fit a `usize`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or overflow.
    pub fn get_len(&mut self) -> Result<usize> {
        usize::try_from(self.get_u64()?).map_err(|_| persist_err("length overflows usize"))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `len` raw bytes, validating `len` against the remaining
    /// input *before* any allocation — the read for untrusted counted
    /// sections (envelope spec text, embedded payloads).
    ///
    /// # Errors
    ///
    /// Fails with a descriptive error naming `what` when fewer than `len`
    /// bytes remain.
    pub fn get_bytes(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        self.take_elems(len, 1, what)
    }

    /// Bytes `start..start + len` of the heap window (pre-validated by
    /// [`Reader::heap_ref`]).
    fn heap_bytes(&self, off: usize, bytes: usize) -> &[u8] {
        let heap = self.heap.as_ref().expect("shared-mode reader");
        &heap.blob.as_bytes()[heap.base + off..heap.base + off + bytes]
    }

    fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }

    /// Reads a length-prefixed `f32` vector (copied out of the heap in
    /// shared mode — the small vectors this decodes, biases and scales,
    /// are not worth a view).
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an out-of-range length prefix.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        let len = self.get_len()?;
        if self.heap.is_some() {
            let off = self.heap_ref(len, 4, "f32 vector")?;
            Ok(Self::decode_f32s(self.heap_bytes(off, len * 4)))
        } else {
            Ok(Self::decode_f32s(self.take_elems(len, 4, "f32 vector")?))
        }
    }

    /// Reads a length-prefixed `i8` vector (v4+).
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an out-of-range length prefix.
    pub fn get_i8_vec(&mut self) -> Result<Vec<i8>> {
        Ok(self.get_i8_storage()?.into_vec())
    }

    /// [`Reader::get_i8_vec`], but in shared mode the bytes stay a
    /// zero-copy view into the blob instead of being copied out.
    pub(crate) fn get_i8_storage(&mut self) -> Result<Storage<i8>> {
        let len = self.get_len()?;
        if self.heap.is_some() {
            let off = self.heap_ref(len, 1, "i8 vector")?;
            let heap = self.heap.as_ref().expect("shared-mode reader");
            let view = SharedSlice::<i8>::new(Arc::clone(&heap.blob), heap.base + off, len)
                .map_err(|e| persist_err(e.to_string()))?;
            Ok(Storage::shared(view))
        } else {
            let bytes = self.take_elems(len, 1, "i8 vector")?;
            Ok(bytes.iter().map(|&b| b as i8).collect::<Vec<_>>().into())
        }
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an out-of-range length prefix.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let len = self.get_len()?;
        let bytes = if self.heap.is_some() {
            let off = self.heap_ref(len, 8, "u64 vector")?;
            self.heap_bytes(off, len * 8)
        } else {
            self.take_elems(len, 8, "u64 vector")?
        };
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads a shape-prefixed bitpacked matrix — a zero-copy view into
    /// the blob in shared mode.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or inconsistent shape.
    pub fn get_packed_matrix(&mut self) -> Result<PackedMatrix> {
        let rows = self.get_len()?;
        let dim = self.get_len()?;
        if self.heap.is_some() {
            let len = self.get_len()?;
            let off = self.heap_ref(len, 8, "packed matrix")?;
            let heap = self.heap.as_ref().expect("shared-mode reader");
            let m = PackedMatrix::from_shared(Arc::clone(&heap.blob), heap.base + off, rows, dim)
                .map_err(|e| persist_err(e.to_string()))?;
            if m.as_words().len() != len {
                return Err(persist_err("packed matrix word count disagrees with shape"));
            }
            Ok(m)
        } else {
            let words = self.get_u64_vec()?;
            PackedMatrix::from_parts(words, rows, dim).map_err(|e| persist_err(e.to_string()))
        }
    }

    /// Reads a shape-prefixed matrix — a zero-copy view into the blob in
    /// shared mode.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or inconsistent shape.
    pub fn get_matrix(&mut self) -> Result<Matrix> {
        let rows = self.get_len()?;
        let cols = self.get_len()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| persist_err("matrix shape overflows"))?;
        if self.heap.is_some() {
            let off = self.heap_ref(n, 4, "matrix")?;
            let heap = self.heap.as_ref().expect("shared-mode reader");
            Matrix::from_shared(Arc::clone(&heap.blob), heap.base + off, rows, cols)
                .map_err(|e| persist_err(e.to_string()))
        } else {
            let data = Self::decode_f32s(self.take_elems(n, 4, "matrix")?);
            Matrix::from_vec(rows, cols, data).map_err(|e| persist_err(e.to_string()))
        }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Crash-safe file publication: the bytes land in a same-directory temp
/// file, are fsynced, and only then atomically renamed over `path` (with
/// a best-effort directory-entry sync afterwards). A crash or kill at any
/// instant leaves either the old file or the complete new one at `path` —
/// never a torn mix that loads as garbage.
pub(crate) fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "model".into());
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&name),
        None => std::path::PathBuf::from(&name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            if let Ok(dh) = std::fs::File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn put_header(w: &mut Writer, kind: u8) {
    w.put_u32(MAGIC);
    w.put_u8(VERSION);
    w.put_u8(kind);
}

fn check_header(r: &mut Reader<'_>, kind: u8) -> Result<u8> {
    if r.get_u32()? != MAGIC {
        return Err(persist_err("not a BoostHD model blob (bad magic)"));
    }
    let version = r.get_u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(persist_err(format!(
            "unsupported model blob version {version} (supported {MIN_VERSION}..={VERSION})"
        )));
    }
    if version < 2 && kind >= KIND_QUANT_ONLINE {
        return Err(persist_err(format!(
            "model kind {kind} requires blob version 2, got {version}"
        )));
    }
    if version < 3 && kind == KIND_CENTROID {
        return Err(persist_err(format!(
            "model kind {kind} requires blob version 3, got {version}"
        )));
    }
    if version < 4 && kind >= KIND_QUANT_I8_ONLINE {
        return Err(persist_err(format!(
            "model kind {kind} requires blob version 4, got {version}"
        )));
    }
    let got = r.get_u8()?;
    if got != kind {
        return Err(persist_err(format!(
            "blob holds model kind {got}, expected {kind}"
        )));
    }
    Ok(version)
}

fn put_encoder(w: &mut Writer, enc: &SinusoidEncoder) {
    match enc.remat_spec() {
        Some(spec) => {
            w.put_u64(REMAT_SENTINEL);
            w.put_u64(spec.dim as u64);
            w.put_u64(spec.input_len as u64);
            w.put_f32(spec.bandwidth);
            w.put_u64(spec.seed);
        }
        None if w.has_heap() => {
            // Heap mode persists the F×D transpose the encoder actually
            // holds, so a shared read borrows the projection out of the
            // blob with no transpose pass (and no allocation).
            w.put_u64(STORED_T_SENTINEL);
            w.put_matrix(enc.projection_t().expect("stored encoder has projection"));
            w.put_f32_slice(enc.bias());
        }
        None => {
            w.put_matrix(&enc.projection_matrix());
            w.put_f32_slice(enc.bias());
        }
    }
}

fn get_encoder(r: &mut Reader<'_>, version: u8) -> Result<SinusoidEncoder> {
    let rows = r.get_u64()?;
    if rows == REMAT_SENTINEL {
        if version < 4 {
            return Err(persist_err(format!(
                "rematerialized encoder requires blob version 4, got {version}"
            )));
        }
        let spec = RematSpec {
            dim: r.get_len()?,
            input_len: r.get_len()?,
            bandwidth: r.get_f32()?,
            seed: r.get_u64()?,
        };
        return SinusoidEncoder::from_remat_spec(spec).map_err(BoostHdError::from);
    }
    if rows == STORED_T_SENTINEL {
        if version < 4 {
            return Err(persist_err(format!(
                "transposed stored encoder requires blob version 4, got {version}"
            )));
        }
        let projection_t = r.get_matrix()?;
        let bias = r.get_f32_vec()?;
        return SinusoidEncoder::from_parts_transposed(projection_t, bias)
            .map_err(BoostHdError::from);
    }
    // Stored projection: `rows` was the matrix row count — finish reading
    // the v1-layout matrix in place.
    let rows = usize::try_from(rows).map_err(|_| persist_err("length overflows usize"))?;
    let cols = r.get_len()?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| persist_err("matrix shape overflows"))?;
    let data = Reader::decode_f32s(r.take_elems(n, 4, "projection matrix")?);
    let projection = Matrix::from_vec(rows, cols, data).map_err(|e| persist_err(e.to_string()))?;
    let bias = r.get_f32_vec()?;
    SinusoidEncoder::from_parts(projection, bias).map_err(BoostHdError::from)
}

fn put_i8_rows(w: &mut Writer, rows: &I8Rows) {
    w.put_u64(rows.rows() as u64);
    w.put_u64(rows.cols() as u64);
    w.put_f32_slice(rows.scales());
    w.put_i8_slice(rows.data());
}

fn get_i8_rows(r: &mut Reader<'_>) -> Result<I8Rows> {
    let rows = r.get_len()?;
    let cols = r.get_len()?;
    let scales = r.get_f32_vec()?;
    let data = r.get_i8_storage()?;
    if scales.len() != rows {
        return Err(persist_err("int8 scale count disagrees with row count"));
    }
    I8Rows::from_storage(data, scales, cols)
}

impl OnlineHd {
    /// Serializes the trained model to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Writes the full model blob (header included) into `w` — the body
    /// shared by [`OnlineHd::to_bytes`] and the fleet store's heap-mode
    /// records.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_ONLINE);
        let c = self.config();
        w.put_u64(c.dim as u64);
        w.put_f32(c.lr);
        w.put_u64(c.epochs as u64);
        w.put_u8(c.bootstrap as u8);
        w.put_u64(c.seed);
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        w.put_matrix(self.class_hypervectors());
    }

    /// Deserializes a model written by [`OnlineHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Decodes a full model blob from `r` — the body shared by
    /// [`OnlineHd::from_bytes`] and the fleet store's shared-mode reads
    /// (exhaustion is the caller's check).
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_ONLINE)?;
        let config = OnlineHdConfig {
            dim: r.get_len()?,
            lr: r.get_f32()?,
            epochs: r.get_len()?,
            bootstrap: r.get_u8()? != 0,
            seed: r.get_u64()?,
        };
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let class_hvs = r.get_matrix()?;
        if class_hvs.rows() != num_classes || class_hvs.cols() != config.dim {
            return Err(persist_err("class hypervector shape disagrees with header"));
        }
        Ok(Self::from_parts(encoder, class_hvs, num_classes, config))
    }

    /// Writes the model to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`OnlineHd::save`].
    ///
    /// # Errors
    ///
    /// As [`OnlineHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl crate::CentroidHd {
    /// Serializes the trained model to the compact binary format (v3).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Full-blob encode body shared with the fleet store.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_CENTROID);
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        w.put_matrix(self.class_hypervectors());
    }

    /// Deserializes a model written by [`crate::CentroidHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Full-blob decode body shared with the fleet store.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_CENTROID)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let class_hvs = r.get_matrix()?;
        Self::from_parts(encoder, class_hvs, num_classes)
    }

    /// Writes the model to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`crate::CentroidHd::save`].
    ///
    /// # Errors
    ///
    /// As [`crate::CentroidHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

fn voting_tag(v: Voting) -> u8 {
    match v {
        Voting::Soft => 0,
        Voting::Hard => 1,
    }
}

fn voting_from(tag: u8) -> Result<Voting> {
    match tag {
        0 => Ok(Voting::Soft),
        1 => Ok(Voting::Hard),
        other => Err(persist_err(format!("unknown voting tag {other}"))),
    }
}

fn mode_tag(m: EnsembleMode) -> u8 {
    match m {
        EnsembleMode::Partitioned => 0,
        EnsembleMode::FullDimension => 1,
    }
}

fn mode_from(tag: u8) -> Result<EnsembleMode> {
    match tag {
        0 => Ok(EnsembleMode::Partitioned),
        1 => Ok(EnsembleMode::FullDimension),
        other => Err(persist_err(format!("unknown ensemble mode tag {other}"))),
    }
}

fn sample_tag(s: SampleMode) -> u8 {
    match s {
        SampleMode::Resample => 0,
        SampleMode::Reweight => 1,
    }
}

fn sample_from(tag: u8) -> Result<SampleMode> {
    match tag {
        0 => Ok(SampleMode::Resample),
        1 => Ok(SampleMode::Reweight),
        other => Err(persist_err(format!("unknown sample mode tag {other}"))),
    }
}

impl BoostHd {
    /// Serializes the trained ensemble to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Full-blob encode body shared with the fleet store.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_BOOST);
        let c = self.config();
        w.put_u64(c.dim_total as u64);
        w.put_u64(c.n_learners as u64);
        w.put_f32(c.lr);
        w.put_u64(c.epochs as u64);
        w.put_u8(c.bootstrap as u8);
        w.put_u8(voting_tag(c.voting));
        w.put_u8(mode_tag(c.mode));
        w.put_u8(sample_tag(c.sample_mode));
        w.put_f64(c.boost_shrinkage);
        w.put_f64(c.weight_clamp);
        w.put_u8(c.class_balanced_init as u8);
        w.put_u64(c.seed);
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        w.put_u64(self.training_errors().len() as u64);
        for &e in self.training_errors() {
            w.put_f64(e);
        }
        w.put_u64(self.num_learners() as u64);
        for i in 0..self.num_learners() {
            let (alpha, start, end, own_encoder) = self.learner_parts(i);
            w.put_f32(alpha);
            w.put_u64(start as u64);
            w.put_u64(end as u64);
            w.put_matrix(self.learner_class_hypervectors(i));
            match own_encoder {
                None => w.put_u8(0),
                Some(enc) => {
                    w.put_u8(1);
                    put_encoder(w, enc);
                }
            }
        }
    }

    /// Deserializes an ensemble written by [`BoostHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Full-blob decode body shared with the fleet store.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_BOOST)?;
        let config = BoostHdConfig {
            dim_total: r.get_len()?,
            n_learners: r.get_len()?,
            lr: r.get_f32()?,
            epochs: r.get_len()?,
            bootstrap: r.get_u8()? != 0,
            voting: voting_from(r.get_u8()?)?,
            mode: mode_from(r.get_u8()?)?,
            sample_mode: sample_from(r.get_u8()?)?,
            boost_shrinkage: r.get_f64()?,
            weight_clamp: r.get_f64()?,
            class_balanced_init: r.get_u8()? != 0,
            seed: r.get_u64()?,
        };
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let n_errors = r.get_len()?;
        let mut train_errors = Vec::with_capacity(n_errors.min(1 << 16));
        for _ in 0..n_errors {
            train_errors.push(r.get_f64()?);
        }
        let n_learners = r.get_len()?;
        if n_learners != config.n_learners {
            return Err(persist_err("learner count disagrees with config"));
        }
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = r.get_f32()?;
            let start = r.get_len()?;
            let end = r.get_len()?;
            let class_hvs = r.get_matrix()?;
            if class_hvs.rows() != num_classes {
                return Err(persist_err("learner class count disagrees with header"));
            }
            let own_encoder = match r.get_u8()? {
                0 => None,
                1 => Some(get_encoder(r, version)?),
                other => return Err(persist_err(format!("unknown encoder tag {other}"))),
            };
            learners.push((alpha, start, end, class_hvs, own_encoder));
        }
        Self::from_parts(encoder, learners, num_classes, config, train_errors)
    }

    /// Writes the ensemble to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads an ensemble written by [`BoostHd::save`].
    ///
    /// # Errors
    ///
    /// As [`BoostHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedHd {
    /// Serializes the bitpacked model to the compact binary format (v2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Full-blob encode body shared with the fleet store.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_QUANT_ONLINE);
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        w.put_packed_matrix(self.class_bits());
    }

    /// Deserializes a model written by [`QuantizedHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Full-blob decode body shared with the fleet store.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_QUANT_ONLINE)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let class_bits = r.get_packed_matrix()?;
        Self::from_parts(encoder, class_bits, num_classes)
    }

    /// Writes the model to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`QuantizedHd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedBoostHd {
    /// Serializes the bitpacked ensemble to the compact binary format (v2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Full-blob encode body shared with the fleet store.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_QUANT_BOOST);
        w.put_u64(self.dim_total() as u64);
        w.put_u8(voting_tag(self.voting()));
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        w.put_u64(self.num_learners() as u64);
        for i in 0..self.num_learners() {
            let (class_bits, alpha, start, end, own_encoder) = self.learner_parts(i);
            w.put_f32(alpha);
            w.put_u64(start as u64);
            w.put_u64(end as u64);
            w.put_packed_matrix(class_bits);
            match own_encoder {
                None => w.put_u8(0),
                Some(enc) => {
                    w.put_u8(1);
                    put_encoder(w, enc);
                }
            }
        }
    }

    /// Deserializes an ensemble written by [`QuantizedBoostHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Full-blob decode body shared with the fleet store.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_QUANT_BOOST)?;
        let dim_total = r.get_len()?;
        let voting = voting_from(r.get_u8()?)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let n_learners = r.get_len()?;
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = r.get_f32()?;
            let seg_start = r.get_len()?;
            let seg_end = r.get_len()?;
            let class_bits = r.get_packed_matrix()?;
            let own_encoder = match r.get_u8()? {
                0 => None,
                1 => Some(get_encoder(r, version)?),
                other => return Err(persist_err(format!("unknown encoder tag {other}"))),
            };
            learners.push(QuantizedWeakLearner {
                class_bits,
                alpha,
                seg_start,
                seg_end,
                own_encoder,
            });
        }
        Self::from_parts(encoder, learners, num_classes, voting, dim_total)
    }

    /// Writes the ensemble to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads an ensemble written by [`QuantizedBoostHd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedBoostHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedI8Hd {
    /// Serializes the scaled-int8 model to the compact binary format (v4).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Full-blob encode body shared with the fleet store.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_QUANT_I8_ONLINE);
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        put_i8_rows(w, self.classes());
    }

    /// Deserializes a model written by [`QuantizedI8Hd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Full-blob decode body shared with the fleet store.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_QUANT_I8_ONLINE)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let classes = get_i8_rows(r)?;
        Self::from_parts(encoder, classes, num_classes)
    }

    /// Writes the model to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`QuantizedI8Hd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedI8Hd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedI8BoostHd {
    /// Serializes the scaled-int8 ensemble to the compact binary format
    /// (v4).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Full-blob encode body shared with the fleet store.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        put_header(w, KIND_QUANT_I8_BOOST);
        w.put_u64(self.dim_total() as u64);
        w.put_u8(voting_tag(self.voting()));
        w.put_u64(self.num_classes() as u64);
        put_encoder(w, self.encoder());
        w.put_u64(self.num_learners() as u64);
        for learner in self.learners() {
            w.put_f32(learner.alpha);
            w.put_u64(learner.seg_start as u64);
            w.put_u64(learner.seg_end as u64);
            put_i8_rows(w, &learner.classes);
            match &learner.own_encoder {
                None => w.put_u8(0),
                Some(enc) => {
                    w.put_u8(1);
                    put_encoder(w, enc);
                }
            }
        }
    }

    /// Deserializes an ensemble written by
    /// [`QuantizedI8BoostHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let model = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(model)
    }

    /// Full-blob decode body shared with the fleet store.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let version = check_header(r, KIND_QUANT_I8_BOOST)?;
        let dim_total = r.get_len()?;
        let voting = voting_from(r.get_u8()?)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(r, version)?;
        let n_learners = r.get_len()?;
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = r.get_f32()?;
            let seg_start = r.get_len()?;
            let seg_end = r.get_len()?;
            let classes = get_i8_rows(r)?;
            let own_encoder = match r.get_u8()? {
                0 => None,
                1 => Some(get_encoder(r, version)?),
                other => return Err(persist_err(format!("unknown encoder tag {other}"))),
            };
            learners.push(QuantizedI8WeakLearner {
                classes,
                alpha,
                seg_start,
                seg_end,
                own_encoder,
            });
        }
        Self::from_parts(encoder, learners, num_classes, voting, dim_total)
    }

    /// Writes the ensemble to a file (atomically: temp sibling + fsync +
    /// rename, so a crash mid-save never leaves a torn file at `path`).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads an ensemble written by [`QuantizedI8BoostHd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedI8BoostHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use linalg::Rng64;

    fn toy() -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 3;
            rows.push(vec![class as f32 + 0.2 * rng.normal(), 0.2 * rng.normal()]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn writer_reader_primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-1.5);
        w.put_f64(std::f64::consts::PI);
        w.put_f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn matrix_round_trip() {
        let mut rng = Rng64::seed_from(1);
        let m = Matrix::random_normal(5, 7, &mut rng);
        let mut w = Writer::new();
        w.put_matrix(&m);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_matrix().unwrap(), m);
    }

    #[test]
    fn truncated_read_fails_cleanly() {
        let mut w = Writer::new();
        w.put_u64(10);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn onlinehd_round_trip_preserves_predictions() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let restored = OnlineHd::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(model.class_hypervectors(), restored.class_hypervectors());
        assert_eq!(model.config(), restored.config());
    }

    #[test]
    fn boosthd_round_trip_preserves_everything() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 120,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let restored = BoostHd::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(model.alphas(), restored.alphas());
        assert_eq!(model.training_errors(), restored.training_errors());
        assert_eq!(model.config(), restored.config());
    }

    #[test]
    fn file_save_load_round_trip() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 60,
            n_learners: 3,
            epochs: 2,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let dir = std::env::temp_dir().join("boosthd_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bhd");
        model.save(&path).unwrap();
        let restored = BoostHd::load(&path).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_onlinehd_round_trips() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize();
        let restored = QuantizedHd::from_bytes(&quantized.to_bytes()).unwrap();
        assert_eq!(quantized.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(quantized.class_bits(), restored.class_bits());
    }

    #[test]
    fn quantized_boosthd_round_trips() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 120,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize();
        let restored = QuantizedBoostHd::from_bytes(&quantized.to_bytes()).unwrap();
        assert_eq!(quantized.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(quantized.alphas(), restored.alphas());
        assert_eq!(quantized.voting(), restored.voting());
        assert_eq!(quantized.dim_total(), restored.dim_total());
    }

    #[test]
    fn quantized_blob_kinds_are_disjoint_from_f32_kinds() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        assert!(OnlineHd::from_bytes(&quantized.to_bytes()).is_err());
        assert!(QuantizedHd::from_bytes(&model.to_bytes()).is_err());
    }

    #[test]
    fn truncated_quantized_blob_is_rejected() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize();
        let bytes = quantized.to_bytes();
        for cut in (0..bytes.len()).step_by(bytes.len() / 7 + 1) {
            assert!(QuantizedHd::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn v1_header_is_rejected_for_quantized_kinds() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize();
        let mut bytes = quantized.to_bytes();
        bytes[4] = 1; // version byte: pretend this is a v1 blob
        let err = QuantizedHd::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("requires blob version 2"), "{err}");
    }

    #[test]
    fn v1_dense_blobs_remain_readable() {
        // The writer emits the same payload layout for kinds 1–2 as v1 did
        // (a stored encoder serializes byte-identically); a blob re-stamped
        // as v1 must still load.
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let mut bytes = model.to_bytes();
        assert_eq!(bytes[4], 4, "current writer stamps v4");
        bytes[4] = 1;
        let restored = OnlineHd::from_bytes(&bytes).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
    }

    #[test]
    fn quantized_i8_onlinehd_round_trips_bit_identically() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let restored = QuantizedI8Hd::from_bytes(&quantized.to_bytes()).unwrap();
        // Derived norms are recomputed from the stored bytes at load, so
        // the full score surface must match bit-for-bit, not just argmaxes.
        assert_eq!(quantized.scores_batch(&x), restored.scores_batch(&x));
        assert_eq!(
            quantized.class_storage_bytes(),
            restored.class_storage_bytes()
        );
    }

    #[test]
    fn quantized_i8_boosthd_round_trips_bit_identically() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 120,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let restored = QuantizedI8BoostHd::from_bytes(&quantized.to_bytes()).unwrap();
        assert_eq!(quantized.scores_batch(&x), restored.scores_batch(&x));
        assert_eq!(quantized.alphas(), restored.alphas());
        assert_eq!(quantized.voting(), restored.voting());
        assert_eq!(quantized.dim_total(), restored.dim_total());
    }

    #[test]
    fn i8_kinds_require_v4() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let mut bytes = quantized.to_bytes();
        bytes[4] = 3; // pretend the blob predates the int8 kinds
        let err = QuantizedI8Hd::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("requires blob version 4"), "{err}");
        // And the kinds stay disjoint from the packed tier.
        assert!(QuantizedHd::from_bytes(&quantized.to_bytes()).is_err());
    }

    #[test]
    fn truncated_i8_blob_is_rejected() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let bytes = quantized.to_bytes();
        for cut in (0..bytes.len()).step_by(bytes.len() / 7 + 1) {
            assert!(QuantizedI8Hd::from_bytes(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(QuantizedI8Hd::from_bytes(&trailing).is_err());
    }

    #[test]
    fn remat_encoder_round_trips_as_recipe() {
        use hdc::encoder::{Encode, SinusoidEncoder};
        // A rematerialized encoder persists as a ~32-byte recipe instead of
        // the D×F projection, and reloads to bit-identical encodings.
        let enc = SinusoidEncoder::try_new_remat(128, 6, 77).unwrap();
        let mut rng = Rng64::seed_from(3);
        let probe = Matrix::random_normal(5, 6, &mut rng);
        let mut w = Writer::new();
        super::put_encoder(&mut w, &enc);
        let bytes = w.into_bytes();
        assert!(
            bytes.len() < 64,
            "remat recipe should be tiny, got {} bytes",
            bytes.len()
        );
        let mut r = Reader::new(&bytes);
        let restored = super::get_encoder(&mut r, VERSION).unwrap();
        assert!(restored.is_rematerialized());
        assert_eq!(enc.encode_batch(&probe), restored.encode_batch(&probe));
        // Pre-v4 readers must reject the sentinel loudly.
        let mut r = Reader::new(&bytes);
        let err = super::get_encoder(&mut r, 3).unwrap_err();
        assert!(err.to_string().contains("requires blob version 4"), "{err}");
    }

    #[test]
    fn i8_model_with_remat_encoder_round_trips() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let mut model = OnlineHd::fit(&config, &x, &y).unwrap();
        model.rematerialize_encoder().unwrap();
        let quantized = model.quantize_i8();
        let stored_bytes = OnlineHd::fit(&config, &x, &y)
            .unwrap()
            .quantize_i8()
            .to_bytes();
        let remat_bytes = quantized.to_bytes();
        assert!(
            remat_bytes.len() * 2 < stored_bytes.len(),
            "remat blob ({}) should be far smaller than stored ({})",
            remat_bytes.len(),
            stored_bytes.len()
        );
        let restored = QuantizedI8Hd::from_bytes(&remat_bytes).unwrap();
        assert_eq!(quantized.scores_batch(&x), restored.scores_batch(&x));
    }

    #[test]
    fn centroid_round_trip_preserves_predictions() {
        let (x, y) = toy();
        let config = crate::CentroidHdConfig {
            dim: 96,
            ..Default::default()
        };
        let model = crate::CentroidHd::fit(&config, &x, &y).unwrap();
        let restored = crate::CentroidHd::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(model.class_hypervectors(), restored.class_hypervectors());
    }

    #[test]
    fn centroid_blob_requires_v3_and_rejects_other_kinds() {
        let (x, y) = toy();
        let config = crate::CentroidHdConfig {
            dim: 64,
            ..Default::default()
        };
        let model = crate::CentroidHd::fit(&config, &x, &y).unwrap();
        let mut bytes = model.to_bytes();
        assert!(OnlineHd::from_bytes(&bytes).is_err(), "kind is disjoint");
        bytes[4] = 2; // pretend the blob predates the centroid kind
        let err = crate::CentroidHd::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("requires blob version 3"), "{err}");
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let (x, y) = toy();
        let online = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        assert!(BoostHd::from_bytes(&online.to_bytes()).is_err());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let mut bytes = model.to_bytes();
        bytes[0] ^= 0xFF;
        assert!(OnlineHd::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let bytes = model.to_bytes();
        assert!(OnlineHd::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn corrupt_length_prefixes_fail_fast_without_allocation() {
        // A length prefix claiming ~2^61 elements must produce a
        // descriptive error before any allocation is attempted — not an
        // abort on a multi-gigabyte reserve.
        let mut w = Writer::new();
        w.put_u64(1 << 61);
        let bytes = w.into_bytes();
        let rejected = |msg: String| msg.contains("but only") || msg.contains("overflows");
        let err = Reader::new(&bytes).get_f32_vec().unwrap_err();
        assert!(rejected(err.to_string()), "{err}");
        let err = Reader::new(&bytes).get_u64_vec().unwrap_err();
        assert!(rejected(err.to_string()), "{err}");
        let err = Reader::new(&bytes).get_i8_vec().unwrap_err();
        assert!(rejected(err.to_string()), "{err}");
        // Matrix shapes whose element count overflows are rejected too.
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2);
        w.put_u64(16);
        let err = Reader::new(&w.into_bytes()).get_matrix().unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn heap_mode_primitives_round_trip_with_zero_copy_views() {
        let mut rng = Rng64::seed_from(9);
        let m = Matrix::random_normal(4, 6, &mut rng);
        // dim = 128 → two words per row, no padding bits to invalidate.
        let packed = PackedMatrix::from_parts(vec![1, 2, 3, u64::MAX], 2, 128).unwrap();
        let mut w = Writer::new_with_heap();
        w.put_u8(7);
        w.put_f32_slice(&[1.5, -2.5, 3.5]);
        w.put_i8_slice(&[-3, 0, 5]);
        w.put_u64_slice(&[10, 20]);
        w.put_matrix(&m);
        w.put_packed_matrix(&packed);
        let (structure, heap) = w.into_parts();
        let blob = Arc::new(Blob::from_bytes(&heap));
        let mut r = Reader::new_shared(&structure, blob, 0, heap.len()).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.5, -2.5, 3.5]);
        assert_eq!(r.get_i8_vec().unwrap(), vec![-3, 0, 5]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![10, 20]);
        let m2 = r.get_matrix().unwrap();
        assert_eq!(m2, m);
        assert!(m2.is_shared(), "matrix must borrow the blob");
        let p2 = r.get_packed_matrix().unwrap();
        assert_eq!(p2.as_words(), packed.as_words());
        assert!(p2.is_shared(), "packed words must borrow the blob");
        assert!(r.is_exhausted());
    }

    #[test]
    fn heap_mode_model_round_trip_is_bit_identical_and_zero_copy() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let mut w = Writer::new_with_heap();
        model.encode_into(&mut w);
        let (structure, heap) = w.into_parts();
        let blob = Arc::new(Blob::from_bytes(&heap));
        let mut r = Reader::new_shared(&structure, blob, 0, heap.len()).unwrap();
        let restored = OnlineHd::decode_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(model.scores_batch(&x), restored.scores_batch(&x));
        assert!(restored.class_hypervectors().is_shared());
        assert!(restored.encoder().projection_t().unwrap().is_shared());
    }

    #[test]
    fn heap_mode_i8_round_trip_is_bit_identical_and_zero_copy() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let mut w = Writer::new_with_heap();
        model.encode_into(&mut w);
        let (structure, heap) = w.into_parts();
        let blob = Arc::new(Blob::from_bytes(&heap));
        let mut r = Reader::new_shared(&structure, blob, 0, heap.len()).unwrap();
        let restored = QuantizedI8Hd::decode_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(model.scores_batch(&x), restored.scores_batch(&x));
        assert!(
            restored.classes().is_shared(),
            "int8 class grid must borrow the blob"
        );
    }

    #[test]
    fn atomic_save_replaces_existing_file_and_cleans_temp() {
        let dir = std::env::temp_dir().join("boosthd_atomic_save_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bhd");
        std::fs::write(&path, b"garbage that must be replaced").unwrap();
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        model.save(&path).unwrap();
        let restored = OnlineHd::load(&path).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let mut bytes = model.to_bytes();
        bytes.push(0);
        assert!(OnlineHd::from_bytes(&bytes).is_err());
    }
}
