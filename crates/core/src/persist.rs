//! Compact binary persistence for trained models.
//!
//! Wearable deployments flash a trained model onto the device; this module
//! provides the byte format. The dependency policy for this reproduction
//! admits `serde` but no serializer crate, so the codec is hand-rolled:
//! little-endian, length-prefixed, with a magic header and version byte so
//! stale blobs fail loudly instead of mis-deserializing.
//!
//! ```text
//! blob     := magic:u32 version:u8 kind:u8 payload
//! matrix   := rows:u64 cols:u64 f32[rows·cols]
//! vec<f32> := len:u64 f32[len]
//! vec<u64> := len:u64 u64[len]          (v2+)
//! vec<i8>  := len:u64 i8[len]           (v4+)
//! packed   := rows:u64 dim:u64 vec<u64> (v2+, bitpacked sign matrices)
//! i8rows   := rows:u64 cols:u64 vec<f32> vec<i8>  (v4+, scaled int8 rows)
//! encoder  := matrix vec<f32>           (stored projection + bias)
//!           | remat:u64(=u64::MAX) dim:u64 input_len:u64 bandwidth:f32
//!             seed:u64                  (v4+, rematerialized recipe)
//! ```
//!
//! Version history: **v1** stored only the dense-f32 models (kinds 1–2);
//! **v2** adds the bitpacked inference models (kinds 3–4); **v3** adds the
//! centroid model (kind 5); **v4** adds the scaled-int8 inference models
//! (kinds 6–7) and the rematerialized-encoder recipe (a `u64::MAX` row
//! sentinel where a stored projection's row count would sit, so
//! stored-encoder payloads stay byte-identical to v1). Every version keeps
//! the earlier layouts unchanged, so old blobs remain readable.
//!
//! # Example
//!
//! ```
//! use boosthd::{OnlineHd, OnlineHdConfig, Classifier};
//! use linalg::{Matrix, Rng64};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::seed_from(1);
//! let x = Matrix::random_normal(40, 3, &mut rng);
//! let y: Vec<usize> = (0..40).map(|i| i % 2).collect();
//! let config = OnlineHdConfig { dim: 64, epochs: 2, ..Default::default() };
//! let model = OnlineHd::fit(&config, &x, &y)?;
//!
//! let bytes = model.to_bytes();
//! let restored = OnlineHd::from_bytes(&bytes)?;
//! assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
//! # Ok(())
//! # }
//! ```

use crate::boost::{BoostHd, BoostHdConfig, EnsembleMode, SampleMode, Voting};
use crate::classifier::Classifier;
use crate::error::{BoostHdError, Result};
use crate::online::{OnlineHd, OnlineHdConfig};
use crate::quantized::{QuantizedBoostHd, QuantizedHd, QuantizedWeakLearner};
use crate::quantized_i8::{I8Rows, QuantizedI8BoostHd, QuantizedI8Hd, QuantizedI8WeakLearner};
use hdc::backend::PackedMatrix;
use hdc::encoder::{RematSpec, SinusoidEncoder};
use linalg::Matrix;

/// `"BHD1"` little-endian.
const MAGIC: u32 = 0x3144_4842;
/// Bump on any incompatible layout change; readers accept every version
/// back to [`MIN_VERSION`] whose layout for the requested kind is known.
const VERSION: u8 = 4;
/// Oldest readable blob version.
const MIN_VERSION: u8 = 1;
const KIND_ONLINE: u8 = 1;
const KIND_BOOST: u8 = 2;
/// Bitpacked single-learner model ([`QuantizedHd`]); requires v2.
const KIND_QUANT_ONLINE: u8 = 3;
/// Bitpacked boosted ensemble ([`QuantizedBoostHd`]); requires v2.
const KIND_QUANT_BOOST: u8 = 4;
/// Single-pass centroid model ([`crate::CentroidHd`]); requires v3.
const KIND_CENTROID: u8 = 5;
/// Scaled-int8 single-learner model ([`QuantizedI8Hd`]); requires v4.
const KIND_QUANT_I8_ONLINE: u8 = 6;
/// Scaled-int8 boosted ensemble ([`QuantizedI8BoostHd`]); requires v4.
const KIND_QUANT_I8_BOOST: u8 = 7;

/// Row-count sentinel marking a rematerialized-encoder recipe where a
/// stored projection's `rows:u64` would sit (no real projection has
/// `u64::MAX` rows, and v1–v3 readers fail loudly on it).
const REMAT_SENTINEL: u64 = u64::MAX;

fn persist_err(reason: impl Into<String>) -> BoostHdError {
    BoostHdError::DataMismatch {
        reason: reason.into(),
    }
}

/// Little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Appends a length-prefixed `i8` slice (v4+).
    pub fn put_i8_slice(&mut self, v: &[i8]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.push(x as u8);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a shape-prefixed bitpacked matrix.
    pub fn put_packed_matrix(&mut self, m: &PackedMatrix) {
        self.put_u64(m.rows() as u64);
        self.put_u64(m.dim() as u64);
        self.put_u64_slice(m.as_words());
    }

    /// Appends a shape-prefixed matrix.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_u64(m.rows() as u64);
        self.put_u64(m.cols() as u64);
        for &x in m.as_slice() {
            self.put_f32(x);
        }
    }
}

/// Little-endian byte source with bounds checking.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| persist_err("truncated model blob"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` that must fit a `usize`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or overflow.
    pub fn get_len(&mut self) -> Result<usize> {
        usize::try_from(self.get_u64()?).map_err(|_| persist_err("length overflows usize"))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed `f32` vector.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        let len = self.get_len()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `i8` vector (v4+).
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_i8_vec(&mut self) -> Result<Vec<i8>> {
        let len = self.get_len()?;
        Ok(self.take(len)?.iter().map(|&b| b as i8).collect())
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let len = self.get_len()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a shape-prefixed bitpacked matrix.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or inconsistent shape.
    pub fn get_packed_matrix(&mut self) -> Result<PackedMatrix> {
        let rows = self.get_len()?;
        let dim = self.get_len()?;
        let words = self.get_u64_vec()?;
        PackedMatrix::from_parts(words, rows, dim).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a shape-prefixed matrix.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or inconsistent shape.
    pub fn get_matrix(&mut self) -> Result<Matrix> {
        let rows = self.get_len()?;
        let cols = self.get_len()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| persist_err("matrix shape overflows"))?;
        let mut data = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            data.push(self.get_f32()?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|e| persist_err(e.to_string()))
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn put_header(w: &mut Writer, kind: u8) {
    w.put_u32(MAGIC);
    w.put_u8(VERSION);
    w.put_u8(kind);
}

fn check_header(r: &mut Reader<'_>, kind: u8) -> Result<u8> {
    if r.get_u32()? != MAGIC {
        return Err(persist_err("not a BoostHD model blob (bad magic)"));
    }
    let version = r.get_u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(persist_err(format!(
            "unsupported model blob version {version} (supported {MIN_VERSION}..={VERSION})"
        )));
    }
    if version < 2 && kind >= KIND_QUANT_ONLINE {
        return Err(persist_err(format!(
            "model kind {kind} requires blob version 2, got {version}"
        )));
    }
    if version < 3 && kind == KIND_CENTROID {
        return Err(persist_err(format!(
            "model kind {kind} requires blob version 3, got {version}"
        )));
    }
    if version < 4 && kind >= KIND_QUANT_I8_ONLINE {
        return Err(persist_err(format!(
            "model kind {kind} requires blob version 4, got {version}"
        )));
    }
    let got = r.get_u8()?;
    if got != kind {
        return Err(persist_err(format!(
            "blob holds model kind {got}, expected {kind}"
        )));
    }
    Ok(version)
}

fn put_encoder(w: &mut Writer, enc: &SinusoidEncoder) {
    match enc.remat_spec() {
        Some(spec) => {
            w.put_u64(REMAT_SENTINEL);
            w.put_u64(spec.dim as u64);
            w.put_u64(spec.input_len as u64);
            w.put_f32(spec.bandwidth);
            w.put_u64(spec.seed);
        }
        None => {
            w.put_matrix(&enc.projection_matrix());
            w.put_f32_slice(enc.bias());
        }
    }
}

fn get_encoder(r: &mut Reader<'_>, version: u8) -> Result<SinusoidEncoder> {
    let rows = r.get_u64()?;
    if rows == REMAT_SENTINEL {
        if version < 4 {
            return Err(persist_err(format!(
                "rematerialized encoder requires blob version 4, got {version}"
            )));
        }
        let spec = RematSpec {
            dim: r.get_len()?,
            input_len: r.get_len()?,
            bandwidth: r.get_f32()?,
            seed: r.get_u64()?,
        };
        return SinusoidEncoder::from_remat_spec(spec).map_err(BoostHdError::from);
    }
    // Stored projection: `rows` was the matrix row count — finish reading
    // the v1-layout matrix in place.
    let rows = usize::try_from(rows).map_err(|_| persist_err("length overflows usize"))?;
    let cols = r.get_len()?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| persist_err("matrix shape overflows"))?;
    let mut data = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        data.push(r.get_f32()?);
    }
    let projection = Matrix::from_vec(rows, cols, data).map_err(|e| persist_err(e.to_string()))?;
    let bias = r.get_f32_vec()?;
    SinusoidEncoder::from_parts(projection, bias).map_err(BoostHdError::from)
}

fn put_i8_rows(w: &mut Writer, rows: &I8Rows) {
    w.put_u64(rows.rows() as u64);
    w.put_u64(rows.cols() as u64);
    w.put_f32_slice(rows.scales());
    w.put_i8_slice(rows.data());
}

fn get_i8_rows(r: &mut Reader<'_>) -> Result<I8Rows> {
    let rows = r.get_len()?;
    let cols = r.get_len()?;
    let scales = r.get_f32_vec()?;
    let data = r.get_i8_vec()?;
    if scales.len() != rows {
        return Err(persist_err("int8 scale count disagrees with row count"));
    }
    I8Rows::from_parts(data, scales, cols)
}

impl OnlineHd {
    /// Serializes the trained model to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_ONLINE);
        let c = self.config();
        w.put_u64(c.dim as u64);
        w.put_f32(c.lr);
        w.put_u64(c.epochs as u64);
        w.put_u8(c.bootstrap as u8);
        w.put_u64(c.seed);
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        w.put_matrix(self.class_hypervectors());
        w.into_bytes()
    }

    /// Deserializes a model written by [`OnlineHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_ONLINE)?;
        let config = OnlineHdConfig {
            dim: r.get_len()?,
            lr: r.get_f32()?,
            epochs: r.get_len()?,
            bootstrap: r.get_u8()? != 0,
            seed: r.get_u64()?,
        };
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let class_hvs = r.get_matrix()?;
        if class_hvs.rows() != num_classes || class_hvs.cols() != config.dim {
            return Err(persist_err("class hypervector shape disagrees with header"));
        }
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Ok(Self::from_parts(encoder, class_hvs, num_classes, config))
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`OnlineHd::save`].
    ///
    /// # Errors
    ///
    /// As [`OnlineHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl crate::CentroidHd {
    /// Serializes the trained model to the compact binary format (v3).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_CENTROID);
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        w.put_matrix(self.class_hypervectors());
        w.into_bytes()
    }

    /// Deserializes a model written by [`crate::CentroidHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_CENTROID)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let class_hvs = r.get_matrix()?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Self::from_parts(encoder, class_hvs, num_classes)
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`crate::CentroidHd::save`].
    ///
    /// # Errors
    ///
    /// As [`crate::CentroidHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

fn voting_tag(v: Voting) -> u8 {
    match v {
        Voting::Soft => 0,
        Voting::Hard => 1,
    }
}

fn voting_from(tag: u8) -> Result<Voting> {
    match tag {
        0 => Ok(Voting::Soft),
        1 => Ok(Voting::Hard),
        other => Err(persist_err(format!("unknown voting tag {other}"))),
    }
}

fn mode_tag(m: EnsembleMode) -> u8 {
    match m {
        EnsembleMode::Partitioned => 0,
        EnsembleMode::FullDimension => 1,
    }
}

fn mode_from(tag: u8) -> Result<EnsembleMode> {
    match tag {
        0 => Ok(EnsembleMode::Partitioned),
        1 => Ok(EnsembleMode::FullDimension),
        other => Err(persist_err(format!("unknown ensemble mode tag {other}"))),
    }
}

fn sample_tag(s: SampleMode) -> u8 {
    match s {
        SampleMode::Resample => 0,
        SampleMode::Reweight => 1,
    }
}

fn sample_from(tag: u8) -> Result<SampleMode> {
    match tag {
        0 => Ok(SampleMode::Resample),
        1 => Ok(SampleMode::Reweight),
        other => Err(persist_err(format!("unknown sample mode tag {other}"))),
    }
}

impl BoostHd {
    /// Serializes the trained ensemble to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_BOOST);
        let c = self.config();
        w.put_u64(c.dim_total as u64);
        w.put_u64(c.n_learners as u64);
        w.put_f32(c.lr);
        w.put_u64(c.epochs as u64);
        w.put_u8(c.bootstrap as u8);
        w.put_u8(voting_tag(c.voting));
        w.put_u8(mode_tag(c.mode));
        w.put_u8(sample_tag(c.sample_mode));
        w.put_f64(c.boost_shrinkage);
        w.put_f64(c.weight_clamp);
        w.put_u8(c.class_balanced_init as u8);
        w.put_u64(c.seed);
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        w.put_u64(self.training_errors().len() as u64);
        for &e in self.training_errors() {
            w.put_f64(e);
        }
        w.put_u64(self.num_learners() as u64);
        for i in 0..self.num_learners() {
            let (alpha, start, end, own_encoder) = self.learner_parts(i);
            w.put_f32(alpha);
            w.put_u64(start as u64);
            w.put_u64(end as u64);
            w.put_matrix(self.learner_class_hypervectors(i));
            match own_encoder {
                None => w.put_u8(0),
                Some(enc) => {
                    w.put_u8(1);
                    put_encoder(&mut w, enc);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes an ensemble written by [`BoostHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_BOOST)?;
        let config = BoostHdConfig {
            dim_total: r.get_len()?,
            n_learners: r.get_len()?,
            lr: r.get_f32()?,
            epochs: r.get_len()?,
            bootstrap: r.get_u8()? != 0,
            voting: voting_from(r.get_u8()?)?,
            mode: mode_from(r.get_u8()?)?,
            sample_mode: sample_from(r.get_u8()?)?,
            boost_shrinkage: r.get_f64()?,
            weight_clamp: r.get_f64()?,
            class_balanced_init: r.get_u8()? != 0,
            seed: r.get_u64()?,
        };
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let n_errors = r.get_len()?;
        let mut train_errors = Vec::with_capacity(n_errors.min(1 << 16));
        for _ in 0..n_errors {
            train_errors.push(r.get_f64()?);
        }
        let n_learners = r.get_len()?;
        if n_learners != config.n_learners {
            return Err(persist_err("learner count disagrees with config"));
        }
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = r.get_f32()?;
            let start = r.get_len()?;
            let end = r.get_len()?;
            let class_hvs = r.get_matrix()?;
            if class_hvs.rows() != num_classes {
                return Err(persist_err("learner class count disagrees with header"));
            }
            let own_encoder = match r.get_u8()? {
                0 => None,
                1 => Some(get_encoder(&mut r, version)?),
                other => return Err(persist_err(format!("unknown encoder tag {other}"))),
            };
            learners.push((alpha, start, end, class_hvs, own_encoder));
        }
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Self::from_parts(encoder, learners, num_classes, config, train_errors)
    }

    /// Writes the ensemble to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads an ensemble written by [`BoostHd::save`].
    ///
    /// # Errors
    ///
    /// As [`BoostHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedHd {
    /// Serializes the bitpacked model to the compact binary format (v2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_QUANT_ONLINE);
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        w.put_packed_matrix(self.class_bits());
        w.into_bytes()
    }

    /// Deserializes a model written by [`QuantizedHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_QUANT_ONLINE)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let class_bits = r.get_packed_matrix()?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Self::from_parts(encoder, class_bits, num_classes)
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`QuantizedHd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedBoostHd {
    /// Serializes the bitpacked ensemble to the compact binary format (v2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_QUANT_BOOST);
        w.put_u64(self.dim_total() as u64);
        w.put_u8(voting_tag(self.voting()));
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        w.put_u64(self.num_learners() as u64);
        for i in 0..self.num_learners() {
            let (class_bits, alpha, start, end, own_encoder) = self.learner_parts(i);
            w.put_f32(alpha);
            w.put_u64(start as u64);
            w.put_u64(end as u64);
            w.put_packed_matrix(class_bits);
            match own_encoder {
                None => w.put_u8(0),
                Some(enc) => {
                    w.put_u8(1);
                    put_encoder(&mut w, enc);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes an ensemble written by [`QuantizedBoostHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_QUANT_BOOST)?;
        let dim_total = r.get_len()?;
        let voting = voting_from(r.get_u8()?)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let n_learners = r.get_len()?;
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = r.get_f32()?;
            let seg_start = r.get_len()?;
            let seg_end = r.get_len()?;
            let class_bits = r.get_packed_matrix()?;
            let own_encoder = match r.get_u8()? {
                0 => None,
                1 => Some(get_encoder(&mut r, version)?),
                other => return Err(persist_err(format!("unknown encoder tag {other}"))),
            };
            learners.push(QuantizedWeakLearner {
                class_bits,
                alpha,
                seg_start,
                seg_end,
                own_encoder,
            });
        }
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Self::from_parts(encoder, learners, num_classes, voting, dim_total)
    }

    /// Writes the ensemble to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads an ensemble written by [`QuantizedBoostHd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedBoostHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedI8Hd {
    /// Serializes the scaled-int8 model to the compact binary format (v4).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_QUANT_I8_ONLINE);
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        put_i8_rows(&mut w, self.classes());
        w.into_bytes()
    }

    /// Deserializes a model written by [`QuantizedI8Hd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_QUANT_I8_ONLINE)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let classes = get_i8_rows(&mut r)?;
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Self::from_parts(encoder, classes, num_classes)
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads a model written by [`QuantizedI8Hd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedI8Hd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl QuantizedI8BoostHd {
    /// Serializes the scaled-int8 ensemble to the compact binary format
    /// (v4).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        put_header(&mut w, KIND_QUANT_I8_BOOST);
        w.put_u64(self.dim_total() as u64);
        w.put_u8(voting_tag(self.voting()));
        w.put_u64(self.num_classes() as u64);
        put_encoder(&mut w, self.encoder());
        w.put_u64(self.num_learners() as u64);
        for learner in self.learners() {
            w.put_f32(learner.alpha);
            w.put_u64(learner.seg_start as u64);
            w.put_u64(learner.seg_end as u64);
            put_i8_rows(&mut w, &learner.classes);
            match &learner.own_encoder {
                None => w.put_u8(0),
                Some(enc) => {
                    w.put_u8(1);
                    put_encoder(&mut w, enc);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes an ensemble written by
    /// [`QuantizedI8BoostHd::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated, corrupt, or
    /// wrong-kind blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = check_header(&mut r, KIND_QUANT_I8_BOOST)?;
        let dim_total = r.get_len()?;
        let voting = voting_from(r.get_u8()?)?;
        let num_classes = r.get_len()?;
        let encoder = get_encoder(&mut r, version)?;
        let n_learners = r.get_len()?;
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = r.get_f32()?;
            let seg_start = r.get_len()?;
            let seg_end = r.get_len()?;
            let classes = get_i8_rows(&mut r)?;
            let own_encoder = match r.get_u8()? {
                0 => None,
                1 => Some(get_encoder(&mut r, version)?),
                other => return Err(persist_err(format!("unknown encoder tag {other}"))),
            };
            learners.push(QuantizedI8WeakLearner {
                classes,
                alpha,
                seg_start,
                seg_end,
                own_encoder,
            });
        }
        if !r.is_exhausted() {
            return Err(persist_err("trailing bytes after model blob"));
        }
        Self::from_parts(encoder, learners, num_classes, voting, dim_total)
    }

    /// Writes the ensemble to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| persist_err(e.to_string()))
    }

    /// Reads an ensemble written by [`QuantizedI8BoostHd::save`].
    ///
    /// # Errors
    ///
    /// As [`QuantizedI8BoostHd::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| persist_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use linalg::Rng64;

    fn toy() -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 3;
            rows.push(vec![class as f32 + 0.2 * rng.normal(), 0.2 * rng.normal()]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn writer_reader_primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-1.5);
        w.put_f64(std::f64::consts::PI);
        w.put_f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn matrix_round_trip() {
        let mut rng = Rng64::seed_from(1);
        let m = Matrix::random_normal(5, 7, &mut rng);
        let mut w = Writer::new();
        w.put_matrix(&m);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_matrix().unwrap(), m);
    }

    #[test]
    fn truncated_read_fails_cleanly() {
        let mut w = Writer::new();
        w.put_u64(10);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn onlinehd_round_trip_preserves_predictions() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let restored = OnlineHd::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(model.class_hypervectors(), restored.class_hypervectors());
        assert_eq!(model.config(), restored.config());
    }

    #[test]
    fn boosthd_round_trip_preserves_everything() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 120,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let restored = BoostHd::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(model.alphas(), restored.alphas());
        assert_eq!(model.training_errors(), restored.training_errors());
        assert_eq!(model.config(), restored.config());
    }

    #[test]
    fn file_save_load_round_trip() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 60,
            n_learners: 3,
            epochs: 2,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let dir = std::env::temp_dir().join("boosthd_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bhd");
        model.save(&path).unwrap();
        let restored = BoostHd::load(&path).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_onlinehd_round_trips() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize();
        let restored = QuantizedHd::from_bytes(&quantized.to_bytes()).unwrap();
        assert_eq!(quantized.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(quantized.class_bits(), restored.class_bits());
    }

    #[test]
    fn quantized_boosthd_round_trips() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 120,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize();
        let restored = QuantizedBoostHd::from_bytes(&quantized.to_bytes()).unwrap();
        assert_eq!(quantized.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(quantized.alphas(), restored.alphas());
        assert_eq!(quantized.voting(), restored.voting());
        assert_eq!(quantized.dim_total(), restored.dim_total());
    }

    #[test]
    fn quantized_blob_kinds_are_disjoint_from_f32_kinds() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        assert!(OnlineHd::from_bytes(&quantized.to_bytes()).is_err());
        assert!(QuantizedHd::from_bytes(&model.to_bytes()).is_err());
    }

    #[test]
    fn truncated_quantized_blob_is_rejected() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize();
        let bytes = quantized.to_bytes();
        for cut in (0..bytes.len()).step_by(bytes.len() / 7 + 1) {
            assert!(QuantizedHd::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn v1_header_is_rejected_for_quantized_kinds() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize();
        let mut bytes = quantized.to_bytes();
        bytes[4] = 1; // version byte: pretend this is a v1 blob
        let err = QuantizedHd::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("requires blob version 2"), "{err}");
    }

    #[test]
    fn v1_dense_blobs_remain_readable() {
        // The writer emits the same payload layout for kinds 1–2 as v1 did
        // (a stored encoder serializes byte-identically); a blob re-stamped
        // as v1 must still load.
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let mut bytes = model.to_bytes();
        assert_eq!(bytes[4], 4, "current writer stamps v4");
        bytes[4] = 1;
        let restored = OnlineHd::from_bytes(&bytes).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
    }

    #[test]
    fn quantized_i8_onlinehd_round_trips_bit_identically() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let restored = QuantizedI8Hd::from_bytes(&quantized.to_bytes()).unwrap();
        // Derived norms are recomputed from the stored bytes at load, so
        // the full score surface must match bit-for-bit, not just argmaxes.
        assert_eq!(quantized.scores_batch(&x), restored.scores_batch(&x));
        assert_eq!(
            quantized.class_storage_bytes(),
            restored.class_storage_bytes()
        );
    }

    #[test]
    fn quantized_i8_boosthd_round_trips_bit_identically() {
        let (x, y) = toy();
        let config = BoostHdConfig {
            dim_total: 120,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let restored = QuantizedI8BoostHd::from_bytes(&quantized.to_bytes()).unwrap();
        assert_eq!(quantized.scores_batch(&x), restored.scores_batch(&x));
        assert_eq!(quantized.alphas(), restored.alphas());
        assert_eq!(quantized.voting(), restored.voting());
        assert_eq!(quantized.dim_total(), restored.dim_total());
    }

    #[test]
    fn i8_kinds_require_v4() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let mut bytes = quantized.to_bytes();
        bytes[4] = 3; // pretend the blob predates the int8 kinds
        let err = QuantizedI8Hd::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("requires blob version 4"), "{err}");
        // And the kinds stay disjoint from the packed tier.
        assert!(QuantizedHd::from_bytes(&quantized.to_bytes()).is_err());
    }

    #[test]
    fn truncated_i8_blob_is_rejected() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 32,
            epochs: 2,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let bytes = quantized.to_bytes();
        for cut in (0..bytes.len()).step_by(bytes.len() / 7 + 1) {
            assert!(QuantizedI8Hd::from_bytes(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(QuantizedI8Hd::from_bytes(&trailing).is_err());
    }

    #[test]
    fn remat_encoder_round_trips_as_recipe() {
        use hdc::encoder::{Encode, SinusoidEncoder};
        // A rematerialized encoder persists as a ~32-byte recipe instead of
        // the D×F projection, and reloads to bit-identical encodings.
        let enc = SinusoidEncoder::try_new_remat(128, 6, 77).unwrap();
        let mut rng = Rng64::seed_from(3);
        let probe = Matrix::random_normal(5, 6, &mut rng);
        let mut w = Writer::new();
        super::put_encoder(&mut w, &enc);
        let bytes = w.into_bytes();
        assert!(
            bytes.len() < 64,
            "remat recipe should be tiny, got {} bytes",
            bytes.len()
        );
        let mut r = Reader::new(&bytes);
        let restored = super::get_encoder(&mut r, VERSION).unwrap();
        assert!(restored.is_rematerialized());
        assert_eq!(enc.encode_batch(&probe), restored.encode_batch(&probe));
        // Pre-v4 readers must reject the sentinel loudly.
        let mut r = Reader::new(&bytes);
        let err = super::get_encoder(&mut r, 3).unwrap_err();
        assert!(err.to_string().contains("requires blob version 4"), "{err}");
    }

    #[test]
    fn i8_model_with_remat_encoder_round_trips() {
        let (x, y) = toy();
        let config = OnlineHdConfig {
            dim: 96,
            epochs: 4,
            ..Default::default()
        };
        let mut model = OnlineHd::fit(&config, &x, &y).unwrap();
        model.rematerialize_encoder().unwrap();
        let quantized = model.quantize_i8();
        let stored_bytes = OnlineHd::fit(&config, &x, &y)
            .unwrap()
            .quantize_i8()
            .to_bytes();
        let remat_bytes = quantized.to_bytes();
        assert!(
            remat_bytes.len() * 2 < stored_bytes.len(),
            "remat blob ({}) should be far smaller than stored ({})",
            remat_bytes.len(),
            stored_bytes.len()
        );
        let restored = QuantizedI8Hd::from_bytes(&remat_bytes).unwrap();
        assert_eq!(quantized.scores_batch(&x), restored.scores_batch(&x));
    }

    #[test]
    fn centroid_round_trip_preserves_predictions() {
        let (x, y) = toy();
        let config = crate::CentroidHdConfig {
            dim: 96,
            ..Default::default()
        };
        let model = crate::CentroidHd::fit(&config, &x, &y).unwrap();
        let restored = crate::CentroidHd::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(model.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(model.class_hypervectors(), restored.class_hypervectors());
    }

    #[test]
    fn centroid_blob_requires_v3_and_rejects_other_kinds() {
        let (x, y) = toy();
        let config = crate::CentroidHdConfig {
            dim: 64,
            ..Default::default()
        };
        let model = crate::CentroidHd::fit(&config, &x, &y).unwrap();
        let mut bytes = model.to_bytes();
        assert!(OnlineHd::from_bytes(&bytes).is_err(), "kind is disjoint");
        bytes[4] = 2; // pretend the blob predates the centroid kind
        let err = crate::CentroidHd::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("requires blob version 3"), "{err}");
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let (x, y) = toy();
        let online = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        assert!(BoostHd::from_bytes(&online.to_bytes()).is_err());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let mut bytes = model.to_bytes();
        bytes[0] ^= 0xFF;
        assert!(OnlineHd::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let bytes = model.to_bytes();
        assert!(OnlineHd::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (x, y) = toy();
        let model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 32,
                epochs: 2,
                ..Default::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let mut bytes = model.to_bytes();
        bytes.push(0);
        assert!(OnlineHd::from_bytes(&bytes).is_err());
    }
}
