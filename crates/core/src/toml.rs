//! Minimal TOML subset codec for model/experiment spec files.
//!
//! The dependency policy for this reproduction admits no external TOML
//! crate, so the spec layer ([`crate::spec`]) carries its own hand-rolled
//! reader/writer for the subset the spec files actually use:
//!
//! * `[table]` headers (one level, no nesting, no dotted keys);
//! * `key = value` pairs with string (`"..."`), integer, float, boolean,
//!   and flat integer-array (`[1, 2, 3]`) values;
//! * `#` comments and blank lines.
//!
//! Duplicate tables and duplicate keys within a table are rejected — a
//! spec file that says two different things must fail loudly, not pick
//! one. Unknown keys are *not* rejected here; each consumer validates its
//! own table so error messages can name the offending section.
//!
//! # Example
//!
//! ```
//! use boosthd::toml::TomlDoc;
//!
//! let doc = TomlDoc::parse(
//!     "[model]\nkind = \"boost_hd\"\ndim_total = 4000\nlr = 0.035\n",
//! )?;
//! let model = doc.table("model").expect("section exists");
//! assert_eq!(model.get_str("kind")?, "boost_hd");
//! assert_eq!(model.get_usize("dim_total")?, 4000);
//! # Ok::<(), boosthd::BoostHdError>(())
//! ```

use crate::error::{BoostHdError, Result};
use std::fmt::Write as _;

fn toml_err(reason: impl Into<String>) -> BoostHdError {
    BoostHdError::InvalidConfig {
        reason: reason.into(),
    }
}

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A `"quoted"` string.
    Str(String),
    /// A decimal integer.
    Int(i64),
    /// A decimal integer above `i64::MAX` (seeds are full-range `u64`s).
    U64(u64),
    /// A float (any numeric literal containing `.`, `e`, `inf`, or `nan`).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A flat `[1, 2, 3]` integer array.
    IntArray(Vec<i64>),
    /// A flat `[0.0, 1e-5, 0.5]` float array (any element with a `.` or
    /// exponent promotes the whole array; severity grids go through this).
    FloatArray(Vec<f64>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) | TomlValue::U64(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::IntArray(_) => "integer array",
            TomlValue::FloatArray(_) => "float array",
        }
    }
}

/// One `[name]` table: ordered `key = value` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    name: String,
    entries: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// The table's `[name]` (empty for the implicit root table).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The keys present, in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Raw value lookup.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn require(&self, key: &str) -> Result<&TomlValue> {
        self.get(key).ok_or_else(|| {
            toml_err(format!(
                "missing key `{key}` in [{}]",
                if self.name.is_empty() {
                    "<root>"
                } else {
                    &self.name
                }
            ))
        })
    }

    fn wrong_type(&self, key: &str, want: &str, got: &TomlValue) -> BoostHdError {
        toml_err(format!(
            "key `{key}` in [{}] must be a {want}, got a {}",
            self.name,
            got.type_name()
        ))
    }

    /// String value of `key`.
    ///
    /// # Errors
    ///
    /// Fails if the key is missing or not a string.
    pub fn get_str(&self, key: &str) -> Result<&str> {
        match self.require(key)? {
            TomlValue::Str(s) => Ok(s),
            other => Err(self.wrong_type(key, "string", other)),
        }
    }

    /// Integer value of `key`.
    ///
    /// # Errors
    ///
    /// Fails if the key is missing, not an integer, or above `i64::MAX`.
    pub fn get_int(&self, key: &str) -> Result<i64> {
        match self.require(key)? {
            TomlValue::Int(v) => Ok(*v),
            TomlValue::U64(v) => Err(toml_err(format!(
                "key `{key}` in [{}] holds {v}, which overflows a signed integer",
                self.name
            ))),
            other => Err(self.wrong_type(key, "integer", other)),
        }
    }

    /// Non-negative integer value of `key` as a `usize`.
    ///
    /// # Errors
    ///
    /// Fails if the key is missing, not an integer, or negative.
    pub fn get_usize(&self, key: &str) -> Result<usize> {
        let v = self.get_int(key)?;
        usize::try_from(v).map_err(|_| {
            toml_err(format!(
                "key `{key}` in [{}] must be >= 0, got {v}",
                self.name
            ))
        })
    }

    /// `u64` value of `key` (full range; seeds go through this).
    ///
    /// # Errors
    ///
    /// Fails if the key is missing, not an integer, or negative.
    pub fn get_u64(&self, key: &str) -> Result<u64> {
        match self.require(key)? {
            TomlValue::U64(v) => Ok(*v),
            TomlValue::Int(v) => u64::try_from(*v).map_err(|_| {
                toml_err(format!(
                    "key `{key}` in [{}] must be >= 0, got {v}",
                    self.name
                ))
            }),
            other => Err(self.wrong_type(key, "integer", other)),
        }
    }

    /// Float value of `key` (integers are accepted and widened).
    ///
    /// # Errors
    ///
    /// Fails if the key is missing or not numeric.
    pub fn get_float(&self, key: &str) -> Result<f64> {
        match self.require(key)? {
            TomlValue::Float(v) => Ok(*v),
            TomlValue::Int(v) => Ok(*v as f64),
            TomlValue::U64(v) => Ok(*v as f64),
            other => Err(self.wrong_type(key, "float", other)),
        }
    }

    /// Boolean value of `key`.
    ///
    /// # Errors
    ///
    /// Fails if the key is missing or not a boolean.
    pub fn get_bool(&self, key: &str) -> Result<bool> {
        match self.require(key)? {
            TomlValue::Bool(v) => Ok(*v),
            other => Err(self.wrong_type(key, "boolean", other)),
        }
    }

    /// Float-array value of `key` (integer arrays are accepted and
    /// widened).
    ///
    /// # Errors
    ///
    /// Fails if the key is missing or not a numeric array.
    pub fn get_float_array(&self, key: &str) -> Result<Vec<f64>> {
        match self.require(key)? {
            TomlValue::FloatArray(vs) => Ok(vs.clone()),
            TomlValue::IntArray(vs) => Ok(vs.iter().map(|&v| v as f64).collect()),
            other => Err(self.wrong_type(key, "float array", other)),
        }
    }

    /// Integer-array value of `key` as `usize`s.
    ///
    /// # Errors
    ///
    /// Fails if the key is missing, not an array, or holds negatives.
    pub fn get_usize_array(&self, key: &str) -> Result<Vec<usize>> {
        match self.require(key)? {
            TomlValue::IntArray(vs) => vs
                .iter()
                .map(|&v| {
                    usize::try_from(v).map_err(|_| {
                        toml_err(format!(
                            "array `{key}` in [{}] must hold values >= 0, got {v}",
                            self.name
                        ))
                    })
                })
                .collect(),
            other => Err(self.wrong_type(key, "integer array", other)),
        }
    }
}

/// A parsed spec document: the implicit root table plus every `[table]`
/// section, in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlDoc {
    tables: Vec<TomlTable>,
}

impl TomlDoc {
    /// Parses the supported TOML subset (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] with the offending line
    /// number for malformed headers, keys, values, or duplicates.
    pub fn parse(text: &str) -> Result<TomlDoc> {
        let mut tables = vec![TomlTable::default()];
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| toml_err(format!("line {lineno}: unterminated table header")))?
                    .trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(toml_err(format!(
                        "line {lineno}: invalid table name `{name}`"
                    )));
                }
                if tables.iter().any(|t| t.name == name) {
                    return Err(toml_err(format!("line {lineno}: duplicate table [{name}]")));
                }
                tables.push(TomlTable {
                    name: name.to_string(),
                    entries: Vec::new(),
                });
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                toml_err(format!(
                    "line {lineno}: expected `key = value` or `[table]`"
                ))
            })?;
            let key = key.trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(toml_err(format!("line {lineno}: invalid key `{key}`")));
            }
            let value =
                parse_value(value.trim()).map_err(|e| toml_err(format!("line {lineno}: {e}")))?;
            let table = tables.last_mut().expect("root table always present");
            if table.get(key).is_some() {
                return Err(toml_err(format!(
                    "line {lineno}: duplicate key `{key}` in [{}]",
                    table.name
                )));
            }
            table.entries.push((key.to_string(), value));
        }
        Ok(TomlDoc { tables })
    }

    /// The `[name]` table, if present (`""` addresses the root table; the
    /// root is only returned when it holds at least one key).
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables
            .iter()
            .find(|t| t.name == name && (!t.name.is_empty() || !t.entries.is_empty()))
    }

    /// Every non-empty table, in file order.
    pub fn tables(&self) -> impl Iterator<Item = &TomlTable> {
        self.tables
            .iter()
            .filter(|t| !t.name.is_empty() || !t.entries.is_empty())
    }
}

/// Strips a trailing `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// One parsed numeric array element, before the array commits to a type.
enum ArrayItem {
    Int(i64),
    Float(f64),
}

fn parse_value(s: &str) -> std::result::Result<TomlValue, String> {
    if s.is_empty() {
        return Err("missing value".into());
    }
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{s}`"))?;
        if inner.contains('"') {
            return Err(format!(
                "embedded quote in string `{s}` (escapes unsupported)"
            ));
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    if s == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if s == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array `{s}`"))?
            .trim();
        if inner.is_empty() {
            return Ok(TomlValue::IntArray(Vec::new()));
        }
        let items = inner
            .split(',')
            .map(|item| {
                parse_value(item.trim()).and_then(|v| match v {
                    TomlValue::Int(i) => Ok(ArrayItem::Int(i)),
                    TomlValue::U64(u) => Ok(ArrayItem::Float(u as f64)),
                    TomlValue::Float(f) => Ok(ArrayItem::Float(f)),
                    other => Err(format!(
                        "array element `{}` must be a number, got a {}",
                        item.trim(),
                        other.type_name()
                    )),
                })
            })
            .collect::<std::result::Result<Vec<ArrayItem>, String>>()?;
        if items.iter().all(|i| matches!(i, ArrayItem::Int(_))) {
            return Ok(TomlValue::IntArray(
                items
                    .into_iter()
                    .map(|i| match i {
                        ArrayItem::Int(v) => v,
                        ArrayItem::Float(_) => unreachable!(),
                    })
                    .collect(),
            ));
        }
        return Ok(TomlValue::FloatArray(
            items
                .into_iter()
                .map(|i| match i {
                    ArrayItem::Int(v) => v as f64,
                    ArrayItem::Float(v) => v,
                })
                .collect(),
        ));
    }
    // Underscore separators are accepted in numbers, as in real TOML.
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    if !cleaned.contains(['.', 'e', 'E']) {
        if let Ok(v) = cleaned.parse::<i64>() {
            return Ok(TomlValue::Int(v));
        }
        // Full-range u64 (seeds): values just past i64::MAX stay integers.
        if let Ok(v) = cleaned.parse::<u64>() {
            return Ok(TomlValue::U64(v));
        }
    }
    // Rust's f64 parser accepts `nan`/`inf`/`infinity`; a spec file must
    // not smuggle a non-finite hyperparameter in, so require a numeric
    // leading character and a finite result.
    if cleaned
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-' || c == '.')
    {
        if let Ok(v) = cleaned.parse::<f64>() {
            if v.is_finite() {
                return Ok(TomlValue::Float(v));
            }
            return Err(format!("non-finite value `{s}`"));
        }
    }
    Err(format!("unparseable value `{s}`"))
}

/// Formats a float so it re-parses as a float (whole values keep a
/// trailing `.0`).
fn format_float(value: f64) -> String {
    if value.is_finite() && value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

/// Ordered writer emitting the same subset [`TomlDoc::parse`] reads.
#[derive(Debug, Default)]
pub struct TomlWriter {
    out: String,
}

impl TomlWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a `[name]` table.
    pub fn table(&mut self, name: &str) {
        if !self.out.is_empty() {
            self.out.push('\n');
        }
        let _ = writeln!(self.out, "[{name}]");
    }

    /// Writes a string entry.
    pub fn str(&mut self, key: &str, value: &str) {
        let _ = writeln!(self.out, "{key} = \"{value}\"");
    }

    /// Writes an integer entry.
    pub fn int(&mut self, key: &str, value: i64) {
        let _ = writeln!(self.out, "{key} = {value}");
    }

    /// Writes a full-range `u64` entry (plain decimal; values above
    /// `i64::MAX` re-parse as integers, not negatives).
    pub fn u64(&mut self, key: &str, value: u64) {
        let _ = writeln!(self.out, "{key} = {value}");
    }

    /// Writes a float entry (always with a decimal point or exponent so it
    /// re-parses as a float).
    pub fn float(&mut self, key: &str, value: f64) {
        let _ = writeln!(self.out, "{key} = {}", format_float(value));
    }

    /// Writes a float-array entry (each element formatted as
    /// [`TomlWriter::float`] does, so the array re-parses as floats).
    pub fn float_array(&mut self, key: &str, values: &[f64]) {
        let items: Vec<String> = values.iter().map(|&v| format_float(v)).collect();
        let _ = writeln!(self.out, "{key} = [{}]", items.join(", "));
    }

    /// Writes a boolean entry.
    pub fn bool(&mut self, key: &str, value: bool) {
        let _ = writeln!(self.out, "{key} = {value}");
    }

    /// Writes an integer-array entry.
    pub fn int_array(&mut self, key: &str, values: &[usize]) {
        let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(self.out, "{key} = [{}]", items.join(", "));
    }

    /// Finishes, returning the document text.
    pub fn into_string(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_types() {
        let doc = TomlDoc::parse(
            "# spec\ntop = 1\n[model]\nkind = \"boost_hd\" # inline comment\n\
             dim_total = 4_000\nlr = 0.035\nbootstrap = true\nhidden = [256, 128]\n",
        )
        .unwrap();
        assert_eq!(doc.table("").unwrap().get_int("top").unwrap(), 1);
        let m = doc.table("model").unwrap();
        assert_eq!(m.get_str("kind").unwrap(), "boost_hd");
        assert_eq!(m.get_usize("dim_total").unwrap(), 4000);
        assert!((m.get_float("lr").unwrap() - 0.035).abs() < 1e-12);
        assert!(m.get_bool("bootstrap").unwrap());
        assert_eq!(m.get_usize_array("hidden").unwrap(), vec![256, 128]);
    }

    #[test]
    fn integers_widen_to_floats_on_demand() {
        let doc = TomlDoc::parse("[t]\nx = 3\n").unwrap();
        assert_eq!(doc.table("t").unwrap().get_float("x").unwrap(), 3.0);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(TomlDoc::parse("[a]\n[a]\n").is_err(), "duplicate table");
        assert!(TomlDoc::parse("k = 1\nk = 2\n").is_err(), "duplicate key");
        assert!(TomlDoc::parse("[unclosed\n").is_err());
        assert!(TomlDoc::parse("k = \n").is_err(), "missing value");
        assert!(TomlDoc::parse("k = \"open\n").is_err(), "open string");
        assert!(TomlDoc::parse("just words\n").is_err());
        assert!(TomlDoc::parse("k = [1, two]\n").is_err(), "bad array");
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        // f64::from_str happily parses these; a spec file must not.
        for garbage in ["nan", "inf", "infinity", "-inf", "NaN", "1e999"] {
            assert!(
                TomlDoc::parse(&format!("lr = {garbage}\n")).is_err(),
                "{garbage} should be rejected"
            );
        }
        // Regular signed/exponent floats still parse.
        let doc = TomlDoc::parse("a = -0.5\nb = 1e-3\nc = +2.0\n").unwrap();
        let t = doc.table("").unwrap();
        assert_eq!(t.get_float("a").unwrap(), -0.5);
        assert_eq!(t.get_float("b").unwrap(), 1e-3);
        assert_eq!(t.get_float("c").unwrap(), 2.0);
    }

    #[test]
    fn type_errors_name_the_key_and_table() {
        let doc = TomlDoc::parse("[model]\nkind = 7\n").unwrap();
        let err = doc.table("model").unwrap().get_str("kind").unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        assert!(err.to_string().contains("model"), "{err}");
        let err = doc.table("model").unwrap().get_str("absent").unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");
    }

    #[test]
    fn negative_rejected_for_unsigned_getters() {
        let doc = TomlDoc::parse("[t]\nx = -3\n").unwrap();
        assert!(doc.table("t").unwrap().get_usize("x").is_err());
        assert!(doc.table("t").unwrap().get_u64("x").is_err());
        assert_eq!(doc.table("t").unwrap().get_int("x").unwrap(), -3);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = TomlDoc::parse("[t]\nname = \"a # b\"\n").unwrap();
        assert_eq!(doc.table("t").unwrap().get_str("name").unwrap(), "a # b");
    }

    #[test]
    fn float_arrays_parse_and_widen() {
        let doc = TomlDoc::parse("[s]\nsev = [0.0, 1e-5, 0.5]\nmixed = [0, 0.25, 3]\n").unwrap();
        let t = doc.table("s").unwrap();
        assert_eq!(t.get_float_array("sev").unwrap(), vec![0.0, 1e-5, 0.5]);
        assert_eq!(t.get_float_array("mixed").unwrap(), vec![0.0, 0.25, 3.0]);
        // All-integer arrays stay integer arrays but widen on demand.
        let doc = TomlDoc::parse("[s]\nints = [1, 2]\n").unwrap();
        let t = doc.table("s").unwrap();
        assert_eq!(t.get_float_array("ints").unwrap(), vec![1.0, 2.0]);
        assert_eq!(t.get_usize_array("ints").unwrap(), vec![1, 2]);
        // ... while float arrays are rejected where integers are required.
        let doc = TomlDoc::parse("[s]\nsev = [0.5]\n").unwrap();
        let err = doc.table("s").unwrap().get_usize_array("sev").unwrap_err();
        assert!(err.to_string().contains("float array"), "{err}");
        // Garbage elements still fail loudly.
        assert!(TomlDoc::parse("sev = [0.5, true]\n").is_err());
        assert!(TomlDoc::parse("sev = [0.5, nan]\n").is_err());
    }

    #[test]
    fn float_array_writer_round_trips() {
        let mut w = TomlWriter::new();
        w.table("scenario");
        w.float_array("severities", &[0.0, 1e-6, 2.0]);
        let text = w.into_string();
        let doc = TomlDoc::parse(&text).unwrap();
        assert_eq!(
            doc.table("scenario")
                .unwrap()
                .get_float_array("severities")
                .unwrap(),
            vec![0.0, 1e-6, 2.0]
        );
    }

    #[test]
    fn writer_output_reparses() {
        let mut w = TomlWriter::new();
        w.table("model");
        w.str("kind", "online_hd");
        w.int("dim", 4000);
        w.float("lr", 0.035);
        w.float("whole", 2.0);
        w.bool("bootstrap", true);
        w.int_array("hidden", &[64, 32]);
        let text = w.into_string();
        let doc = TomlDoc::parse(&text).unwrap();
        let t = doc.table("model").unwrap();
        assert_eq!(t.get_str("kind").unwrap(), "online_hd");
        assert_eq!(t.get_int("dim").unwrap(), 4000);
        assert!((t.get_float("lr").unwrap() - 0.035).abs() < 1e-12);
        assert_eq!(t.get_float("whole").unwrap(), 2.0);
        assert!(matches!(t.get("whole"), Some(TomlValue::Float(_))));
        assert_eq!(t.get_usize_array("hidden").unwrap(), vec![64, 32]);
    }
}
