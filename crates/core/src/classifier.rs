//! The [`Classifier`] trait shared by every model in the reproduction.

use crate::parallel::{chunk_bounds, parallel_map_indices_with, ExecBackend};
use linalg::Matrix;

/// Index of the largest value in `xs`; 0 for an empty slice. Ties resolve to
/// the earliest index, matching `argmax` conventions in the reference
/// implementations.
///
/// `NaN` entries lose to every non-`NaN` value, including `-∞` — a
/// corrupted score must never win just because comparisons against it are
/// vacuously false. A row of only `NaN`s returns 0 (and the confidence
/// layer reports zero confidence for it, so gated deployments abstain
/// rather than trust the fallback index).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_val = f32::NAN;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        if best_val.is_nan() || x > best_val {
            best_val = x;
            best = i;
        }
    }
    best
}

/// A trained multi-class classifier.
///
/// Every model in the evaluation — the HDC family here and the classical
/// baselines in the `baselines` crate — implements this trait, so the
/// benchmark harness can sweep models uniformly.
///
/// The trait is object-safe; heterogeneous model zoos are stored as
/// `Vec<Box<dyn Classifier>>` in the table benchmarks.
pub trait Classifier {
    /// Number of classes the model was trained on.
    fn num_classes(&self) -> usize;

    /// Per-class decision scores for one feature vector (higher is more
    /// confident). The scale is model-specific; only the argmax and relative
    /// ordering are meaningful across models.
    fn scores(&self, x: &[f32]) -> Vec<f32>;

    /// Predicted class for one feature vector.
    fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.scores(x))
    }

    /// Per-class decision scores for every row of `x`, as a
    /// `samples × classes` matrix.
    ///
    /// The default loops over [`Classifier::scores`]; the HDC family
    /// overrides it with genuinely batched paths (one fused encode GEMM
    /// feeding one scoring sweep) whose rows are bit-identical to the
    /// row-at-a-time scores.
    fn scores_batch(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.num_classes());
        for r in 0..x.rows() {
            out.row_mut(r).copy_from_slice(&self.scores(x.row(r)));
        }
        out
    }

    /// Predicted classes for every row of `x`.
    ///
    /// The default loops over [`Classifier::predict`]; models with a faster
    /// batched path (HDC's fused encode GEMM) override it.
    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

/// Row-major argmax over a scores matrix: the shared decision rule batched
/// predictors apply after [`Classifier::scores_batch`].
pub fn argmax_rows(scores: &Matrix) -> Vec<usize> {
    (0..scores.rows()).map(|r| argmax(scores.row(r))).collect()
}

/// Predicts every row of `x` by splitting the batch into `threads`
/// contiguous chunks ([`crate::parallel::chunk_bounds`]) and running
/// [`Classifier::predict_batch`] on each chunk from a persistent pool
/// worker — the fan-out primitive the serving engine and the `*_parallel`
/// model methods share.
///
/// Every chunk flows through the same batched kernels as the whole batch,
/// and those kernels are row-independent, so the result is identical to
/// `model.predict_batch(x)` for any thread count and either execution
/// backend.
pub fn predict_batch_chunked<C>(model: &C, x: &Matrix, threads: usize) -> Vec<usize>
where
    C: Classifier + Sync + ?Sized,
{
    predict_batch_chunked_with(model, x, threads, ExecBackend::Pooled)
}

/// [`predict_batch_chunked`] on an explicit [`ExecBackend`]:
/// [`ExecBackend::Scoped`] reproduces the pre-pool spawn-per-call
/// behavior, the baseline the serving benchmarks measure the pool against
/// and the regression tests pin bit-identity against.
pub fn predict_batch_chunked_with<C>(
    model: &C,
    x: &Matrix,
    threads: usize,
    backend: ExecBackend,
) -> Vec<usize>
where
    C: Classifier + Sync + ?Sized,
{
    let rows = x.rows();
    let workers = threads.clamp(1, rows.max(1));
    if workers <= 1 {
        return model.predict_batch(x);
    }
    parallel_map_indices_with(backend, workers, workers, |w| {
        let (start, end) = chunk_bounds(rows, workers, w);
        model.predict_batch(&x.slice_rows(start, end))
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant {
        k: usize,
        winner: usize,
    }

    impl Classifier for Constant {
        fn num_classes(&self) -> usize {
            self.k
        }
        fn scores(&self, _x: &[f32]) -> Vec<f32> {
            (0..self.k)
                .map(|i| if i == self.winner { 1.0 } else { 0.0 })
                .collect()
        }
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[2.0, 2.0]), 0, "ties resolve to earliest");
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), 1);
    }

    #[test]
    fn argmax_nan_loses_to_any_non_nan_value() {
        // Regression: NaN in slot 0 used to survive because `x > NaN` and
        // `NaN > x` are both false — with user-facing confidences a
        // corrupted score must never be reported as the winner.
        assert_eq!(argmax(&[f32::NAN, -5.0]), 1);
        assert_eq!(argmax(&[f32::NAN, f32::NEG_INFINITY]), 1);
        assert_eq!(argmax(&[1.0, f32::NAN, 2.0]), 2);
        assert_eq!(argmax(&[f32::NAN, f32::NAN, 0.5, f32::NAN]), 2);
        assert_eq!(argmax(&[f32::NEG_INFINITY, f32::NAN]), 0);
        // All-NaN rows fall back to 0 by documented convention.
        assert_eq!(argmax(&[f32::NAN, f32::NAN]), 0);
    }

    #[test]
    fn default_predict_uses_scores() {
        let c = Constant { k: 4, winner: 2 };
        assert_eq!(c.predict(&[0.0]), 2);
    }

    #[test]
    fn default_predict_batch_loops() {
        let c = Constant { k: 3, winner: 1 };
        let x = Matrix::zeros(5, 2);
        assert_eq!(c.predict_batch(&x), vec![1; 5]);
    }

    #[test]
    fn trait_is_object_safe() {
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(Constant { k: 2, winner: 0 }),
            Box::new(Constant { k: 2, winner: 1 }),
        ];
        assert_eq!(models[0].predict(&[1.0]), 0);
        assert_eq!(models[1].predict(&[1.0]), 1);
    }
}
