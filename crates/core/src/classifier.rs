//! The [`Classifier`] trait shared by every model in the reproduction.

use linalg::Matrix;

/// Index of the largest value in `xs`; 0 for an empty slice. Ties resolve to
/// the earliest index, matching `argmax` conventions in the reference
/// implementations.
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > best_val {
            best_val = x;
            best = i;
        }
    }
    best
}

/// A trained multi-class classifier.
///
/// Every model in the evaluation — the HDC family here and the classical
/// baselines in the `baselines` crate — implements this trait, so the
/// benchmark harness can sweep models uniformly.
///
/// The trait is object-safe; heterogeneous model zoos are stored as
/// `Vec<Box<dyn Classifier>>` in the table benchmarks.
pub trait Classifier {
    /// Number of classes the model was trained on.
    fn num_classes(&self) -> usize;

    /// Per-class decision scores for one feature vector (higher is more
    /// confident). The scale is model-specific; only the argmax and relative
    /// ordering are meaningful across models.
    fn scores(&self, x: &[f32]) -> Vec<f32>;

    /// Predicted class for one feature vector.
    fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.scores(x))
    }

    /// Predicted classes for every row of `x`.
    ///
    /// The default loops over [`Classifier::predict`]; models with a faster
    /// batched path (HDC's fused encode GEMM) override it.
    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant {
        k: usize,
        winner: usize,
    }

    impl Classifier for Constant {
        fn num_classes(&self) -> usize {
            self.k
        }
        fn scores(&self, _x: &[f32]) -> Vec<f32> {
            (0..self.k)
                .map(|i| if i == self.winner { 1.0 } else { 0.0 })
                .collect()
        }
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[2.0, 2.0]), 0, "ties resolve to earliest");
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), 1);
    }

    #[test]
    fn default_predict_uses_scores() {
        let c = Constant { k: 4, winner: 2 };
        assert_eq!(c.predict(&[0.0]), 2);
    }

    #[test]
    fn default_predict_batch_loops() {
        let c = Constant { k: 3, winner: 1 };
        let x = Matrix::zeros(5, 2);
        assert_eq!(c.predict_batch(&x), vec![1; 5]);
    }

    #[test]
    fn trait_is_object_safe() {
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(Constant { k: 2, winner: 0 }),
            Box::new(Constant { k: 2, winner: 1 }),
        ];
        assert_eq!(models[0].predict(&[1.0]), 0);
        assert_eq!(models[1].predict(&[1.0]), 1);
    }
}
