//! Model fleet: an append-only on-disk model store plus an in-memory
//! registry that serves many models from one process with bounded
//! residency and atomic hot-swap.
//!
//! # The BHFS store file
//!
//! A store file is a flat sequence of 8-byte-aligned, self-delimiting,
//! checksummed records followed by a footer index, so it can be read
//! zero-copy and recovered after a torn write:
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header: "BHFS" magic (u32 LE) | version u8 | 3 pad bytes     |  8 B
//! +--------------------------------------------------------------+
//! | record 0  (8-aligned)                                        |
//! |   "FREC" magic u32 | flags u32 (0)                           |
//! |   total_len u64   -- 48-byte header + padded meta + heap     |
//! |   meta_len u64    -- unpadded meta byte count                |
//! |   heap_len u64    -- payload heap byte count                 |
//! |   meta_checksum u64 (FNV-1a 64 over meta bytes)              |
//! |   heap_checksum u64 (FNV-1a 64 over heap bytes)              |
//! |   meta bytes, zero-padded to the next 8-byte boundary:       |
//! |     model_id (u64 len + UTF-8 bytes), version u64,           |
//! |     structure stream (u64 len + bytes)                       |
//! |   payload heap bytes (starts 8-aligned within the record)    |
//! +--------------------------------------------------------------+
//! | record 1 ... record N-1 (each starts 8-aligned)              |
//! +--------------------------------------------------------------+
//! | footer index:                                                |
//! |   entry_count u64, then per entry:                           |
//! |     id_len u64 | id bytes | version u64 | offset u64         |
//! |     | total_len u64                                          |
//! | trailer (last 40 bytes of the file):                         |
//! |   index_off u64 | index_len u64 | index_checksum u64         |
//! |   | entry_count u64 | "BHFSIDX\0" magic u64                  |
//! +--------------------------------------------------------------+
//! ```
//!
//! **Alignment invariant.** Every record starts on an 8-byte boundary
//! and its payload heap starts on an 8-byte boundary *within* the
//! record. A record read into a [`Blob`] (itself 8-aligned) therefore
//! keeps every `f32`/`u64`/`i8` payload naturally aligned, and the
//! decoder can hand out borrowed slices of the blob instead of
//! deserializing — loading a model performs no per-array copies.
//!
//! **Checksum invariant.** `meta_checksum`/`heap_checksum` are FNV-1a
//! 64 over the exact stored bytes and are verified on every admission,
//! so a flipped bit on disk surfaces as a descriptive error rather
//! than a corrupt model.
//!
//! **Durability invariant.** [`ModelStore::append`] seeks to the end
//! of the record region (overwriting the previous footer), writes the
//! new records, `fsync`s the data, and only then writes + `fsync`s the
//! new footer. A crash at any point leaves either the old footer
//! intact or a missing/torn footer; [`ModelStore::open`] falls back to
//! scanning the self-delimiting records from the top and keeps exactly
//! the checksum-valid prefix. A store is never loadable-but-corrupt.
//!
//! # The registry
//!
//! [`Fleet`] keys models by `(model_id, version)`. All records sharing
//! one key form a degrade ladder (append order = tier order, most
//! precise first) and are admitted, swapped, and evicted as a single
//! [`FleetModel`] unit. Requests take an [`Arc`] snapshot, so an
//! in-flight request keeps its model (and the blob behind it) alive
//! across hot-swap and LRU eviction; a swapped-out version is tracked
//! until the last snapshot drops ([`Fleet::draining_count`]).

use crate::error::{BoostHdError, Result};
use crate::pipeline::Pipeline;
use linalg::Blob;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};

const STORE_MAGIC: u32 = u32::from_le_bytes(*b"BHFS");
const STORE_VERSION: u8 = 1;
const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"FREC");
const FOOTER_MAGIC: u64 = u64::from_le_bytes(*b"BHFSIDX\0");
const HEADER_LEN: u64 = 8;
const RECORD_HEADER_LEN: u64 = 48;
const TRAILER_LEN: u64 = 40;
/// Per-record ceiling; rejects absurd length fields before allocating.
const MAX_RECORD_LEN: u64 = 1 << 40;

fn store_err(reason: impl Into<String>) -> BoostHdError {
    BoostHdError::DataMismatch {
        reason: reason.into(),
    }
}

fn io_err(what: &str, e: std::io::Error) -> BoostHdError {
    store_err(format!("fleet store {what}: {e}"))
}

/// FNV-1a 64-bit; the store's per-record and footer checksum.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn align8(n: u64) -> u64 {
    (n + 7) & !7
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian u64 read out of a byte slice.
fn read_u64(bytes: &[u8], off: usize, what: &str) -> Result<u64> {
    let end = off
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| store_err(format!("fleet store truncated while reading {what}")))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[off..end]);
    Ok(u64::from_le_bytes(raw))
}

/// One record's location in the store, as listed by the footer index
/// (or recovered by the torn-tail scan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// Logical model name this record belongs to.
    pub model_id: String,
    /// Version the record was published under.
    pub version: u64,
    /// Byte offset of the record header within the store file.
    pub offset: u64,
    /// Record length in bytes (header + padded meta + heap).
    pub total_len: u64,
}

/// Append-only on-disk model store (`.bhfs`). See the module docs for
/// the record format and its alignment/checksum/durability invariants.
pub struct ModelStore {
    path: PathBuf,
    file: Mutex<File>,
    state: Mutex<StoreState>,
}

struct StoreState {
    entries: Vec<StoreEntry>,
    /// Byte offset one past the last record; the footer starts here.
    record_end: u64,
}

impl ModelStore {
    /// Creates an empty store at `path`, truncating any existing file,
    /// and publishes an empty footer so the file is immediately valid.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&STORE_MAGIC.to_le_bytes());
        header.push(STORE_VERSION);
        header.extend_from_slice(&[0u8; 3]);
        file.write_all(&header).map_err(|e| io_err("write", e))?;
        write_footer(&mut file, &[], HEADER_LEN)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            state: Mutex::new(StoreState {
                entries: Vec::new(),
                record_end: HEADER_LEN,
            }),
        })
    }

    /// Opens an existing store. Reads the footer index when its trailer
    /// validates; otherwise recovers by scanning the self-delimiting
    /// records and keeping the checksum-valid prefix.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let file_len = file.metadata().map_err(|e| io_err("stat", e))?.len();
        if file_len < HEADER_LEN {
            return Err(store_err(format!(
                "fleet store is {file_len} bytes, smaller than its {HEADER_LEN}-byte header"
            )));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek", e))?;
        file.read_exact(&mut header)
            .map_err(|e| io_err("read", e))?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if magic != STORE_MAGIC {
            return Err(store_err("not a BHFS fleet store (bad magic)"));
        }
        if header[4] > STORE_VERSION {
            return Err(store_err(format!(
                "fleet store version {} is newer than this build supports ({STORE_VERSION})",
                header[4]
            )));
        }
        let (entries, record_end) = match read_footer(&mut file, file_len) {
            Ok(parsed) => parsed,
            Err(_) => recover_by_scan(&mut file, file_len)?,
        };
        Ok(Self {
            path,
            file: Mutex::new(file),
            state: Mutex::new(StoreState {
                entries,
                record_end,
            }),
        })
    }

    /// Path the store was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Snapshot of the index, in append (= tier) order.
    pub fn entries(&self) -> Vec<StoreEntry> {
        self.state.lock().unwrap().entries.clone()
    }

    /// Distinct versions published for `model_id`, ascending.
    pub fn versions(&self, model_id: &str) -> Vec<u64> {
        let st = self.state.lock().unwrap();
        let mut versions: Vec<u64> = st
            .entries
            .iter()
            .filter(|e| e.model_id == model_id)
            .map(|e| e.version)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        versions
    }

    /// Highest version published for `model_id`, if any.
    pub fn latest_version(&self, model_id: &str) -> Option<u64> {
        self.versions(model_id).last().copied()
    }

    /// Appends one published model — all its degrade-ladder tiers, most
    /// precise first — under `(model_id, version)` and atomically
    /// republishes the footer, so the tiers become visible as one unit.
    ///
    /// Durability: record bytes are written and `fsync`ed before the
    /// footer that names them is written and `fsync`ed. A crash in
    /// between leaves a store that recovers to either the old or the
    /// new index, never to a torn record.
    pub fn append(&self, model_id: &str, version: u64, tiers: &[&Pipeline]) -> Result<()> {
        if tiers.is_empty() {
            return Err(store_err("refusing to publish a model with zero tiers"));
        }
        if model_id.is_empty() {
            return Err(store_err("model_id must be non-empty"));
        }
        // Encode every tier before touching the file.
        let mut blobs = Vec::with_capacity(tiers.len());
        for tier in tiers {
            let (structure, heap) = tier.encode_store_parts()?;
            blobs.push(encode_record(model_id, version, &structure, &heap));
        }

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("open for append", e))?;
        let mut st = self.state.lock().unwrap();
        let mut offset = st.record_end;
        let mut new_entries = st.entries.clone();
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("seek", e))?;
        for record in &blobs {
            file.write_all(record).map_err(|e| io_err("write", e))?;
            new_entries.push(StoreEntry {
                model_id: model_id.to_string(),
                version,
                offset,
                total_len: record.len() as u64,
            });
            offset += record.len() as u64;
        }
        file.sync_all().map_err(|e| io_err("fsync", e))?;
        write_footer(&mut file, &new_entries, offset)?;
        st.entries = new_entries;
        st.record_end = offset;
        // Refresh the shared read handle: the old one is still valid
        // (records never move), but keeping it in sync keeps recovery
        // reasoning simple.
        *self.file.lock().unwrap() = file;
        Ok(())
    }

    /// Loads every tier published under `(model_id, version)` as one
    /// [`FleetModel`]. Each record is read into its own [`Blob`] and
    /// decoded zero-copy; both checksums are verified first.
    pub fn load(&self, model_id: &str, version: u64) -> Result<FleetModel> {
        let entries: Vec<StoreEntry> = self
            .entries()
            .into_iter()
            .filter(|e| e.model_id == model_id && e.version == version)
            .collect();
        if entries.is_empty() {
            return Err(store_err(format!(
                "model '{model_id}' version {version} is not in the store"
            )));
        }
        let mut tiers = Vec::with_capacity(entries.len());
        for entry in &entries {
            tiers.push(Arc::new(self.load_record(entry)?));
        }
        Ok(FleetModel {
            model_id: model_id.to_string(),
            version,
            tiers,
        })
    }

    /// Loads the latest published version of `model_id`.
    pub fn load_latest(&self, model_id: &str) -> Result<FleetModel> {
        let version = self
            .latest_version(model_id)
            .ok_or_else(|| store_err(format!("model '{model_id}' is not in the store")))?;
        self.load(model_id, version)
    }

    /// Reads one record into a fresh blob and decodes it zero-copy.
    pub fn load_record(&self, entry: &StoreEntry) -> Result<Pipeline> {
        if entry.total_len > MAX_RECORD_LEN {
            return Err(store_err(format!(
                "record claims {} bytes, above the {MAX_RECORD_LEN}-byte ceiling",
                entry.total_len
            )));
        }
        let mut raw = vec![0u8; entry.total_len as usize];
        {
            let mut file = self.file.lock().unwrap();
            file.seek(SeekFrom::Start(entry.offset))
                .map_err(|e| io_err("seek", e))?;
            file.read_exact(&mut raw).map_err(|e| io_err("read", e))?;
        }
        let blob = Arc::new(Blob::from_bytes(&raw));
        decode_record(blob, entry.total_len)
    }
}

/// Serializes one record (header + padded meta + heap) to bytes.
/// Callers must place it at an 8-aligned file offset.
fn encode_record(model_id: &str, version: u64, structure: &[u8], heap: &[u8]) -> Vec<u8> {
    let mut meta = Vec::with_capacity(24 + model_id.len() + structure.len());
    push_u64(&mut meta, model_id.len() as u64);
    meta.extend_from_slice(model_id.as_bytes());
    push_u64(&mut meta, version);
    push_u64(&mut meta, structure.len() as u64);
    meta.extend_from_slice(structure);

    let meta_len = meta.len() as u64;
    let heap_off = RECORD_HEADER_LEN + align8(meta_len);
    let total_len = heap_off + heap.len() as u64;
    debug_assert_eq!(heap_off % 8, 0, "payload heap must start 8-aligned");

    let mut record = Vec::with_capacity(align8(total_len) as usize);
    record.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    record.extend_from_slice(&0u32.to_le_bytes());
    push_u64(&mut record, total_len);
    push_u64(&mut record, meta_len);
    push_u64(&mut record, heap.len() as u64);
    push_u64(&mut record, fnv1a64(&meta));
    push_u64(&mut record, fnv1a64(heap));
    record.extend_from_slice(&meta);
    record.resize(heap_off as usize, 0);
    record.extend_from_slice(heap);
    // Pad so the next record starts 8-aligned.
    record.resize(align8(total_len) as usize, 0);
    record
}

/// Parses + checksums a record blob and decodes its pipeline zero-copy.
fn decode_record(blob: Arc<Blob>, total_len: u64) -> Result<Pipeline> {
    let (meta_range, heap_off, heap_len) = validate_record(blob.as_bytes(), 0, total_len)?;
    let bytes = blob.as_bytes();
    let meta = &bytes[meta_range.0..meta_range.1];
    let (_, _, structure_range) = parse_meta(meta, meta_range.0)?;
    let structure = &bytes[structure_range.0..structure_range.1];
    Pipeline::decode_store_parts(structure, Arc::clone(&blob), heap_off, heap_len)
}

/// Validates one record's header and checksums at `offset` inside
/// `bytes`. Returns the absolute meta byte range, plus the heap offset
/// (relative to the record start) and length.
fn validate_record(
    bytes: &[u8],
    offset: usize,
    expect_total: u64,
) -> Result<((usize, usize), usize, usize)> {
    let header_end = offset
        .checked_add(RECORD_HEADER_LEN as usize)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| store_err("fleet store truncated inside a record header"))?;
    let magic = u32::from_le_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]);
    if magic != RECORD_MAGIC {
        return Err(store_err("record magic mismatch"));
    }
    let total_len = read_u64(bytes, offset + 8, "record total_len")?;
    let meta_len = read_u64(bytes, offset + 16, "record meta_len")?;
    let heap_len = read_u64(bytes, offset + 24, "record heap_len")?;
    let meta_checksum = read_u64(bytes, offset + 32, "record meta checksum")?;
    let heap_checksum = read_u64(bytes, offset + 40, "record heap checksum")?;
    if total_len != expect_total {
        return Err(store_err(format!(
            "record claims {total_len} bytes but the index lists {expect_total}"
        )));
    }
    if total_len > MAX_RECORD_LEN || meta_len > total_len || heap_len > total_len {
        return Err(store_err("record length fields are inconsistent"));
    }
    let heap_off = RECORD_HEADER_LEN + align8(meta_len);
    if heap_off + heap_len != total_len {
        return Err(store_err(format!(
            "record layout mismatch: header {RECORD_HEADER_LEN} + padded meta {} + heap {heap_len} != total {total_len}",
            align8(meta_len)
        )));
    }
    let meta_start = header_end;
    let meta_end = meta_start + meta_len as usize;
    let record_end = offset + total_len as usize;
    if record_end > bytes.len() || meta_end > bytes.len() {
        return Err(store_err("record extends past the end of the store"));
    }
    let meta = &bytes[meta_start..meta_end];
    if fnv1a64(meta) != meta_checksum {
        return Err(store_err(
            "record meta checksum mismatch: store file is corrupt or torn",
        ));
    }
    let heap = &bytes[offset + heap_off as usize..record_end];
    if fnv1a64(heap) != heap_checksum {
        return Err(store_err(
            "record payload checksum mismatch: store file is corrupt or torn",
        ));
    }
    Ok(((meta_start, meta_end), heap_off as usize, heap_len as usize))
}

/// Parses record meta; `base` is the meta's absolute offset, so the
/// returned structure range is absolute too.
fn parse_meta(meta: &[u8], base: usize) -> Result<(String, u64, (usize, usize))> {
    let id_len = read_u64(meta, 0, "record model_id length")? as usize;
    let id_end = 8usize
        .checked_add(id_len)
        .filter(|&e| e + 16 <= meta.len())
        .ok_or_else(|| store_err("record meta truncated inside model_id"))?;
    let model_id = std::str::from_utf8(&meta[8..id_end])
        .map_err(|_| store_err("record model_id is not valid UTF-8"))?
        .to_string();
    let version = read_u64(meta, id_end, "record version")?;
    let structure_len = read_u64(meta, id_end + 8, "record structure length")? as usize;
    let structure_start = id_end + 16;
    if structure_start + structure_len != meta.len() {
        return Err(store_err(
            "record meta has trailing bytes after the structure stream",
        ));
    }
    Ok((
        model_id,
        version,
        (
            base + structure_start,
            base + structure_start + structure_len,
        ),
    ))
}

/// Writes the footer (index + trailer) at `record_end`, fsyncs, and
/// trims any stale bytes past the new end of file.
fn write_footer(file: &mut File, entries: &[StoreEntry], record_end: u64) -> Result<()> {
    let mut index = Vec::new();
    push_u64(&mut index, entries.len() as u64);
    for e in entries {
        push_u64(&mut index, e.model_id.len() as u64);
        index.extend_from_slice(e.model_id.as_bytes());
        push_u64(&mut index, e.version);
        push_u64(&mut index, e.offset);
        push_u64(&mut index, e.total_len);
    }
    let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
    push_u64(&mut trailer, record_end);
    push_u64(&mut trailer, index.len() as u64);
    push_u64(&mut trailer, fnv1a64(&index));
    push_u64(&mut trailer, entries.len() as u64);
    push_u64(&mut trailer, FOOTER_MAGIC);
    file.seek(SeekFrom::Start(record_end))
        .map_err(|e| io_err("seek", e))?;
    file.write_all(&index).map_err(|e| io_err("write", e))?;
    file.write_all(&trailer).map_err(|e| io_err("write", e))?;
    file.set_len(record_end + index.len() as u64 + TRAILER_LEN)
        .map_err(|e| io_err("truncate", e))?;
    file.sync_all().map_err(|e| io_err("fsync", e))?;
    Ok(())
}

/// Reads and validates the footer. Errors if the trailer is missing,
/// torn, or inconsistent — the caller then falls back to a record scan.
fn read_footer(file: &mut File, file_len: u64) -> Result<(Vec<StoreEntry>, u64)> {
    if file_len < HEADER_LEN + TRAILER_LEN {
        return Err(store_err("fleet store too small to hold a footer"));
    }
    let mut trailer = [0u8; TRAILER_LEN as usize];
    file.seek(SeekFrom::Start(file_len - TRAILER_LEN))
        .map_err(|e| io_err("seek", e))?;
    file.read_exact(&mut trailer)
        .map_err(|e| io_err("read", e))?;
    let index_off = read_u64(&trailer, 0, "trailer index offset")?;
    let index_len = read_u64(&trailer, 8, "trailer index length")?;
    let index_checksum = read_u64(&trailer, 16, "trailer index checksum")?;
    let entry_count = read_u64(&trailer, 24, "trailer entry count")?;
    let magic = read_u64(&trailer, 32, "trailer magic")?;
    if magic != FOOTER_MAGIC {
        return Err(store_err("footer magic missing"));
    }
    if index_off < HEADER_LEN
        || index_off % 8 != 0
        || index_off + index_len + TRAILER_LEN != file_len
    {
        return Err(store_err("footer geometry inconsistent"));
    }
    let mut index = vec![0u8; index_len as usize];
    file.seek(SeekFrom::Start(index_off))
        .map_err(|e| io_err("seek", e))?;
    file.read_exact(&mut index).map_err(|e| io_err("read", e))?;
    if fnv1a64(&index) != index_checksum {
        return Err(store_err("footer index checksum mismatch"));
    }
    let count = read_u64(&index, 0, "index entry count")?;
    if count != entry_count {
        return Err(store_err("footer entry counts disagree"));
    }
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut pos = 8usize;
    for _ in 0..count {
        let id_len = read_u64(&index, pos, "index id length")? as usize;
        pos += 8;
        let id_end = pos
            .checked_add(id_len)
            .filter(|&e| e + 24 <= index.len())
            .ok_or_else(|| store_err("footer index truncated"))?;
        let model_id = std::str::from_utf8(&index[pos..id_end])
            .map_err(|_| store_err("footer index model_id is not valid UTF-8"))?
            .to_string();
        pos = id_end;
        let version = read_u64(&index, pos, "index version")?;
        let offset = read_u64(&index, pos + 8, "index offset")?;
        let total_len = read_u64(&index, pos + 16, "index total_len")?;
        pos += 24;
        if offset % 8 != 0 || offset + total_len > index_off {
            return Err(store_err("footer index entry out of bounds"));
        }
        entries.push(StoreEntry {
            model_id,
            version,
            offset,
            total_len,
        });
    }
    if pos != index.len() {
        return Err(store_err("footer index has trailing bytes"));
    }
    Ok((entries, index_off))
}

/// Torn-footer recovery: walk the self-delimiting records from the top
/// of the file and keep the longest checksum-valid prefix.
fn recover_by_scan(file: &mut File, file_len: u64) -> Result<(Vec<StoreEntry>, u64)> {
    let mut bytes = vec![0u8; (file_len - HEADER_LEN) as usize];
    file.seek(SeekFrom::Start(HEADER_LEN))
        .map_err(|e| io_err("seek", e))?;
    file.read_exact(&mut bytes).map_err(|e| io_err("read", e))?;
    let mut entries = Vec::new();
    let mut pos = 0u64;
    loop {
        let remaining = bytes.len() as u64 - pos;
        if remaining < RECORD_HEADER_LEN {
            break;
        }
        let total_len = match read_u64(&bytes, pos as usize + 8, "record total_len") {
            Ok(v) => v,
            Err(_) => break,
        };
        if total_len < RECORD_HEADER_LEN || total_len > remaining {
            break;
        }
        let parsed = validate_record(&bytes, pos as usize, total_len).and_then(|(meta, _, _)| {
            parse_meta(&bytes[meta.0..meta.1], meta.0).map(|(id, version, _)| (id, version))
        });
        match parsed {
            Ok((model_id, version)) => {
                entries.push(StoreEntry {
                    model_id,
                    version,
                    offset: HEADER_LEN + pos,
                    total_len,
                });
                pos += align8(total_len);
            }
            // First invalid record: everything past here is a torn
            // tail or stale footer bytes.
            Err(_) => break,
        }
    }
    Ok((entries, HEADER_LEN + pos))
}

/// One resident model: a `(model_id, version)` pair plus its degrade
/// ladder. Requests hold an `Arc<FleetModel>` snapshot, so swaps and
/// evictions never invalidate an in-flight prediction.
pub struct FleetModel {
    model_id: String,
    version: u64,
    tiers: Vec<Arc<Pipeline>>,
}

impl std::fmt::Debug for FleetModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetModel")
            .field("model_id", &self.model_id)
            .field("version", &self.version)
            .field("tiers", &self.tiers.len())
            .finish()
    }
}

impl FleetModel {
    /// Logical model name.
    pub fn model_id(&self) -> &str {
        &self.model_id
    }

    /// Version this snapshot was published under.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// All ladder tiers, most precise first (append order).
    pub fn tiers(&self) -> &[Arc<Pipeline>] {
        &self.tiers
    }

    /// The most precise tier.
    pub fn primary(&self) -> &Arc<Pipeline> {
        &self.tiers[0]
    }

    /// Tier at degrade `level`, clamped to the most degraded available,
    /// so a ladder shorter than the server's degrade ladder still
    /// serves every level.
    pub fn tier(&self, level: usize) -> &Arc<Pipeline> {
        &self.tiers[level.min(self.tiers.len() - 1)]
    }
}

/// Residency knobs for a [`Fleet`].
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Maximum models resident at once; `0` means unbounded. Pinned
    /// models never count as eviction candidates.
    pub max_resident: usize,
}

struct ResidentModel {
    model: Arc<FleetModel>,
    pinned: bool,
    last_used: u64,
}

struct FleetState {
    resident: HashMap<String, ResidentModel>,
    clock: u64,
    /// Swapped-out or evicted models still referenced by in-flight
    /// requests; pruned lazily.
    retiring: Vec<Weak<FleetModel>>,
}

/// In-memory registry over a [`ModelStore`]: LRU residency with
/// pinning, per-request `Arc` snapshots, and atomic hot-swap.
pub struct Fleet {
    store: ModelStore,
    max_resident: usize,
    state: Mutex<FleetState>,
}

impl Fleet {
    /// Opens the store at `path` and wraps it in an empty registry.
    pub fn open(path: impl AsRef<Path>, config: FleetConfig) -> Result<Self> {
        Ok(Self::new(ModelStore::open(path)?, config))
    }

    /// Wraps an already-open store.
    pub fn new(store: ModelStore, config: FleetConfig) -> Self {
        Fleet {
            store,
            max_resident: config.max_resident,
            state: Mutex::new(FleetState {
                resident: HashMap::new(),
                clock: 0,
                retiring: Vec::new(),
            }),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Returns a snapshot of `model_id`, admitting its latest published
    /// version from disk if it is not resident (including when it was
    /// previously evicted — eviction is never a request error).
    pub fn get(&self, model_id: &str) -> Result<Arc<FleetModel>> {
        if let Some(model) = self.lookup_resident(model_id) {
            return Ok(model);
        }
        // Load outside the lock: admission does disk IO + decode and
        // must not stall requests for models that are resident.
        let loaded = Arc::new(self.store.load_latest(model_id)?);
        Ok(self.admit(loaded, false))
    }

    /// Re-reads the latest published version from the store and swaps
    /// it in atomically. Versions only move forward: if the store holds
    /// nothing newer than the resident version, the resident snapshot
    /// is kept. The swapped-out version keeps serving its in-flight
    /// requests and is tracked via [`Fleet::draining_count`] until the
    /// last snapshot drops.
    pub fn refresh(&self, model_id: &str) -> Result<Arc<FleetModel>> {
        let loaded = Arc::new(self.store.load_latest(model_id)?);
        Ok(self.admit(loaded, true))
    }

    /// Pins (or unpins) a model, loading it if necessary. Pinned models
    /// are never LRU-evicted.
    pub fn pin(&self, model_id: &str, pinned: bool) -> Result<()> {
        self.get(model_id)?;
        let mut st = self.state.lock().unwrap();
        if let Some(r) = st.resident.get_mut(model_id) {
            r.pinned = pinned;
        }
        Ok(())
    }

    /// Drops a model from residency (its blob is freed once the last
    /// in-flight snapshot drops). Returns whether it was resident.
    pub fn evict(&self, model_id: &str) -> bool {
        let mut st = self.state.lock().unwrap();
        if let Some(r) = st.resident.remove(model_id) {
            st.retiring.push(Arc::downgrade(&r.model));
            true
        } else {
            false
        }
    }

    /// Number of models currently resident.
    pub fn resident_count(&self) -> usize {
        self.state.lock().unwrap().resident.len()
    }

    /// `(model_id, version, pinned)` for every resident model.
    pub fn resident(&self) -> Vec<(String, u64, bool)> {
        let st = self.state.lock().unwrap();
        let mut out: Vec<_> = st
            .resident
            .values()
            .map(|r| (r.model.model_id.clone(), r.model.version, r.pinned))
            .collect();
        out.sort();
        out
    }

    /// Swapped-out or evicted models still held alive by in-flight
    /// requests.
    pub fn draining_count(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.retiring.retain(|w| w.strong_count() > 0);
        st.retiring.len()
    }

    fn lookup_resident(&self, model_id: &str) -> Option<Arc<FleetModel>> {
        let mut st = self.state.lock().unwrap();
        st.clock += 1;
        let now = st.clock;
        st.resident.get_mut(model_id).map(|r| {
            r.last_used = now;
            Arc::clone(&r.model)
        })
    }

    /// Inserts `loaded` under the monotonic-version rule and runs LRU
    /// eviction. `swap` marks an explicit refresh: equal-version
    /// reloads keep the resident snapshot either way; an older store
    /// version never replaces a newer resident one.
    fn admit(&self, loaded: Arc<FleetModel>, swap: bool) -> Arc<FleetModel> {
        let _ = swap;
        let mut st = self.state.lock().unwrap();
        st.clock += 1;
        let now = st.clock;
        let chosen = match st.resident.get_mut(loaded.model_id.as_str()) {
            Some(r) if r.model.version >= loaded.version => {
                // A concurrent admit (or an already-newer resident
                // version) wins; keep it.
                r.last_used = now;
                Arc::clone(&r.model)
            }
            Some(r) => {
                let old = std::mem::replace(&mut r.model, Arc::clone(&loaded));
                r.last_used = now;
                st.retiring.push(Arc::downgrade(&old));
                loaded
            }
            None => {
                st.resident.insert(
                    loaded.model_id.clone(),
                    ResidentModel {
                        model: Arc::clone(&loaded),
                        pinned: false,
                        last_used: now,
                    },
                );
                loaded
            }
        };
        self.evict_excess(&mut st);
        chosen
    }

    fn evict_excess(&self, st: &mut FleetState) {
        if self.max_resident == 0 {
            return;
        }
        while st.resident.len() > self.max_resident {
            let victim = st
                .resident
                .iter()
                .filter(|(_, r)| !r.pinned)
                .min_by_key(|(_, r)| r.last_used)
                .map(|(id, _)| id.clone());
            match victim {
                Some(id) => {
                    if let Some(r) = st.resident.remove(&id) {
                        st.retiring.push(Arc::downgrade(&r.model));
                    }
                }
                // Everything is pinned; residency stays above the cap.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineHdConfig;
    use crate::spec::ModelSpec;
    use linalg::{Matrix, Rng64};

    fn toy() -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(7);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 3;
            rows.push(vec![class as f32 + 0.2 * rng.normal(), 0.2 * rng.normal()]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn fit(dim: usize, x: &Matrix, y: &[usize]) -> Pipeline {
        let spec = ModelSpec::OnlineHd(OnlineHdConfig {
            dim,
            epochs: 2,
            ..Default::default()
        });
        Pipeline::fit(&spec, x, y).unwrap()
    }

    #[test]
    fn store_round_trips_models_and_preserves_predictions() {
        let dir = tempdir("fleet-roundtrip");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let a = fit(64, &x, &y);
        let b = fit(96, &x, &y);
        let store = ModelStore::create(&path).unwrap();
        store.append("alpha", 1, &[&a]).unwrap();
        store.append("beta", 1, &[&b]).unwrap();

        let reopened = ModelStore::open(&path).unwrap();
        assert_eq!(reopened.entries().len(), 2);
        assert_eq!(reopened.versions("alpha"), vec![1]);
        let got = reopened.load("alpha", 1).unwrap();
        assert_eq!(got.primary().predict_batch(&x), a.predict_batch(&x));
        let got_b = reopened.load_latest("beta").unwrap();
        assert_eq!(got_b.primary().predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn ladder_tiers_publish_and_load_as_one_unit() {
        let dir = tempdir("fleet-ladder");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let full = fit(64, &x, &y);
        let small = fit(32, &x, &y);
        let store = ModelStore::create(&path).unwrap();
        store.append("m", 3, &[&full, &small]).unwrap();
        let model = ModelStore::open(&path).unwrap().load("m", 3).unwrap();
        assert_eq!(model.tiers().len(), 2);
        assert_eq!(model.tier(0).predict_batch(&x), full.predict_batch(&x));
        assert_eq!(model.tier(1).predict_batch(&x), small.predict_batch(&x));
        // Levels past the end clamp to the most degraded tier.
        assert_eq!(model.tier(9).predict_batch(&x), small.predict_batch(&x));
    }

    #[test]
    fn torn_footer_recovers_every_complete_record() {
        let dir = tempdir("fleet-torn-footer");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let store = ModelStore::create(&path).unwrap();
        store.append("a", 1, &[&fit(48, &x, &y)]).unwrap();
        store.append("b", 1, &[&fit(64, &x, &y)]).unwrap();
        // Tear the trailer: chop half the footer off.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - TRAILER_LEN / 2).unwrap();
        drop(file);
        let recovered = ModelStore::open(&path).unwrap();
        let ids: Vec<_> = recovered
            .entries()
            .iter()
            .map(|e| e.model_id.clone())
            .collect();
        assert_eq!(ids, vec!["a", "b"]);
        recovered.load("b", 1).unwrap();
    }

    #[test]
    fn torn_record_tail_is_dropped_and_prefix_survives() {
        let dir = tempdir("fleet-torn-record");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let store = ModelStore::create(&path).unwrap();
        store.append("keep", 1, &[&fit(48, &x, &y)]).unwrap();
        let keep_end = HEADER_LEN + align8(store.entries()[0].total_len);
        store.append("torn", 1, &[&fit(64, &x, &y)]).unwrap();
        // Simulate a crash mid-append: cut into the second record,
        // which also destroyed the old footer.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(keep_end + 40).unwrap();
        drop(file);
        let recovered = ModelStore::open(&path).unwrap();
        let ids: Vec<_> = recovered
            .entries()
            .iter()
            .map(|e| e.model_id.clone())
            .collect();
        assert_eq!(ids, vec!["keep"]);
        recovered.load("keep", 1).unwrap();
        assert!(recovered.load("torn", 1).is_err());
        // The store stays appendable after recovery.
        recovered.append("again", 2, &[&fit(32, &x, &y)]).unwrap();
        let reopened = ModelStore::open(&path).unwrap();
        assert_eq!(reopened.entries().len(), 2);
    }

    #[test]
    fn flipped_payload_bit_fails_checksum_descriptively() {
        let dir = tempdir("fleet-bitflip");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let store = ModelStore::create(&path).unwrap();
        store.append("m", 1, &[&fit(48, &x, &y)]).unwrap();
        let entry = store.entries()[0].clone();
        // Flip a bit in the middle of the payload heap.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = entry.offset + entry.total_len - 16;
        bytes[target as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let reopened = ModelStore::open(&path).unwrap();
        let err = reopened.load("m", 1).unwrap_err().to_string();
        assert!(err.contains("checksum"), "unexpected error: {err}");
    }

    #[test]
    fn registry_lru_evicts_and_readmits_without_error() {
        let dir = tempdir("fleet-lru");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let store = ModelStore::create(&path).unwrap();
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            store.append(id, 1, &[&fit(32 + 16 * i, &x, &y)]).unwrap();
        }
        let fleet = Fleet::new(store, FleetConfig { max_resident: 2 });
        let a = fleet.get("a").unwrap();
        fleet.get("b").unwrap();
        fleet.get("c").unwrap();
        assert_eq!(fleet.resident_count(), 2);
        // "a" was least recently used and got evicted; the held
        // snapshot still predicts, and a new get re-admits from disk.
        assert!(!fleet.resident().iter().any(|(id, _, _)| id == "a"));
        assert_eq!(a.primary().predict_batch(&x).len(), x.rows());
        let a2 = fleet.get("a").unwrap();
        assert_eq!(
            a.primary().predict_batch(&x),
            a2.primary().predict_batch(&x)
        );
        assert_eq!(fleet.resident_count(), 2);
    }

    #[test]
    fn pinned_models_survive_eviction_pressure() {
        let dir = tempdir("fleet-pin");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let store = ModelStore::create(&path).unwrap();
        for id in ["a", "b", "c"] {
            store.append(id, 1, &[&fit(32, &x, &y)]).unwrap();
        }
        let fleet = Fleet::new(store, FleetConfig { max_resident: 2 });
        fleet.pin("a", true).unwrap();
        fleet.get("b").unwrap();
        fleet.get("c").unwrap();
        let resident = fleet.resident();
        assert!(resident.iter().any(|(id, _, pinned)| id == "a" && *pinned));
        assert_eq!(resident.len(), 2);
    }

    #[test]
    fn hot_swap_is_monotonic_and_drains_the_old_version() {
        let dir = tempdir("fleet-swap");
        let path = dir.join("models.bhfs");
        let (x, y) = toy();
        let store = ModelStore::create(&path).unwrap();
        store.append("m", 1, &[&fit(48, &x, &y)]).unwrap();
        let fleet = Fleet::new(store, FleetConfig::default());
        let v1 = fleet.get("m").unwrap();
        assert_eq!(v1.version(), 1);

        fleet.store().append("m", 2, &[&fit(64, &x, &y)]).unwrap();
        let v2 = fleet.refresh("m").unwrap();
        assert_eq!(v2.version(), 2);
        assert_eq!(fleet.get("m").unwrap().version(), 2);
        // The old snapshot keeps serving its in-flight work and is
        // tracked until dropped.
        assert_eq!(v1.primary().predict_batch(&x).len(), x.rows());
        assert_eq!(fleet.draining_count(), 1);
        drop(v1);
        assert_eq!(fleet.draining_count(), 0);
        // A refresh when the store has nothing newer keeps v2.
        let again = fleet.refresh("m").unwrap();
        assert_eq!(again.version(), 2);
        assert!(Arc::ptr_eq(&again, &v2));
    }

    /// Every persistable payload kind — dense f32, packed u64, and int8
    /// class matrices — must decode zero-copy out of the record blob and
    /// predict bit-identically to the fitted original, probabilities
    /// included.
    #[test]
    fn all_payload_kinds_serve_zero_copy_and_bit_identical() {
        use crate::{BoostHdConfig, CentroidHdConfig};
        let specs = vec![
            ModelSpec::OnlineHd(OnlineHdConfig {
                dim: 96,
                epochs: 3,
                ..Default::default()
            }),
            ModelSpec::CentroidHd(CentroidHdConfig {
                dim: 96,
                ..Default::default()
            }),
            ModelSpec::BoostHd(BoostHdConfig {
                dim_total: 120,
                n_learners: 4,
                epochs: 2,
                ..Default::default()
            }),
            ModelSpec::QuantizedOnlineHd {
                base: OnlineHdConfig {
                    dim: 96,
                    epochs: 3,
                    ..Default::default()
                },
                refit_epochs: 2,
            },
            ModelSpec::QuantizedBoostHd {
                base: BoostHdConfig {
                    dim_total: 120,
                    n_learners: 4,
                    epochs: 2,
                    ..Default::default()
                },
                refit_epochs: 0,
            },
            ModelSpec::QuantizedI8OnlineHd {
                base: OnlineHdConfig {
                    dim: 96,
                    epochs: 3,
                    ..Default::default()
                },
                refit_epochs: 2,
            },
            ModelSpec::QuantizedI8BoostHd {
                base: BoostHdConfig {
                    dim_total: 120,
                    n_learners: 4,
                    epochs: 2,
                    ..Default::default()
                },
                refit_epochs: 0,
            },
        ];
        let (x, y) = toy();
        for spec in specs {
            let tag = spec.kind_tag();
            let fitted =
                Pipeline::fit(&spec, &x, &y).unwrap_or_else(|e| panic!("{tag} failed to fit: {e}"));
            let (structure, heap) = fitted
                .encode_store_parts()
                .unwrap_or_else(|e| panic!("{tag} failed to encode: {e}"));
            let record = encode_record(tag, 1, &structure, &heap);
            let blob = Arc::new(Blob::from_bytes(&record));
            let total_len = (RECORD_HEADER_LEN
                + align8(24 + tag.len() as u64 + structure.len() as u64))
                + heap.len() as u64;
            let loaded = decode_record(Arc::clone(&blob), total_len)
                .unwrap_or_else(|e| panic!("{tag} failed to decode: {e}"));
            // Zero-copy: the decoded pipeline borrows its payload slices
            // straight out of the record blob, so the blob's refcount
            // rose past the test's own handle.
            assert!(
                Arc::strong_count(&blob) > 1,
                "{tag} copied its payloads instead of borrowing the blob"
            );
            assert_eq!(
                fitted.predict_batch_with_confidence(&x),
                loaded.predict_batch_with_confidence(&x),
                "{tag} predictions are not bit-identical after zero-copy load"
            );
        }
    }

    #[test]
    fn missing_models_error_descriptively() {
        let dir = tempdir("fleet-missing");
        let path = dir.join("models.bhfs");
        let store = ModelStore::create(&path).unwrap();
        let fleet = Fleet::new(store, FleetConfig::default());
        let err = fleet.get("ghost").unwrap_err().to_string();
        assert!(err.contains("ghost"), "unexpected error: {err}");
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("boosthd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
