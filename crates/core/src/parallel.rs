//! Deterministic fork/join helpers for parallel ensemble inference.
//!
//! The paper notes that while BoostHD *training* is inherently sequential
//! (each weak learner corrects its predecessors), *inference* parallelizes —
//! both across queries and across weak learners. This module provides the
//! small deterministic fork/join primitive the classifiers use.
//!
//! Two execution backends share one chunking function
//! ([`chunk_bounds`]), so they are bit-identical for every thread count:
//!
//! * [`parallel_map_indices`] — the default — runs chunks on the
//!   process-wide persistent [`crate::pool::WorkerPool`], paying two mutex
//!   hops per fan-out instead of `threads` thread spawns (the serving-path
//!   fix: a long-lived server flushes thousands of micro-batches);
//! * [`parallel_map_indices_scoped`] — the original `std::thread::scope`
//!   path, kept as the spawn-per-call baseline for benchmarks and the
//!   bit-identity regression tests.

/// Which fan-out venue a parallel batch call runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The persistent process-wide worker pool ([`crate::pool::global`]).
    #[default]
    Pooled,
    /// Fresh scoped threads spawned per call — the pre-pool behavior,
    /// retained as a measurable baseline.
    Scoped,
}

impl ExecBackend {
    /// Stable lowercase tag for reports and CLI flags.
    pub fn tag(self) -> &'static str {
        match self {
            ExecBackend::Pooled => "pooled",
            ExecBackend::Scoped => "scoped",
        }
    }

    /// Parses a tag produced by [`ExecBackend::tag`].
    pub fn from_tag(tag: &str) -> Option<ExecBackend> {
        match tag {
            "pooled" => Some(ExecBackend::Pooled),
            "scoped" => Some(ExecBackend::Scoped),
            _ => None,
        }
    }
}

/// The shared chunking rule: `0..count` split into `workers` contiguous
/// chunks of `ceil(count / workers)` indices; chunk `w` is
/// `start..end` (clamped to `count`). Both execution backends call this
/// exact function, which is what makes pooled and scoped results
/// bit-identical — any drift in chunk boundaries would reorder
/// floating-point reductions in kernels that accumulate per chunk.
pub fn chunk_bounds(count: usize, workers: usize, w: usize) -> (usize, usize) {
    let chunk = count.div_ceil(workers.max(1));
    ((w * chunk).min(count), ((w + 1) * chunk).min(count))
}

/// Applies `f` to every index in `0..count`, splitting the range into
/// `threads` contiguous chunks ([`chunk_bounds`]) executed on the
/// persistent worker pool. Results are returned in index order and are
/// bit-identical to [`parallel_map_indices_scoped`] for any `threads`.
///
/// With `threads <= 1` (or a trivial range) the work runs inline, so callers
/// can use one code path for both serial and parallel execution. Calls
/// nested inside a pool worker fall back to scoped threads
/// (see [`crate::pool`]), so re-entrant fan-outs cannot deadlock.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_indices<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    crate::pool::global().scoped_map(count, threads, f)
}

/// [`parallel_map_indices`] with an explicit [`ExecBackend`] — the seam
/// benchmarks use to measure the pool against the spawn-per-call baseline.
pub fn parallel_map_indices_with<T, F>(
    backend: ExecBackend,
    count: usize,
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match backend {
        ExecBackend::Pooled => parallel_map_indices(count, threads, f),
        ExecBackend::Scoped => parallel_map_indices_scoped(count, threads, f),
    }
}

/// The original scoped-thread fan-out: spawns `threads` scoped workers per
/// call. Chunking and results are identical to [`parallel_map_indices`];
/// only the execution venue (and its per-call spawn cost) differs.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_indices_scoped<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let mut results: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (start, end) = chunk_bounds(count, workers, w);
            let f = &f;
            handles.push(scope.spawn(move || (start..end).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Process-wide thread-count override set by [`set_default_threads`]
/// (0 = unset).
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Environment variable consulted by [`default_threads`] when no
/// programmatic override is set.
pub const THREADS_ENV_VAR: &str = "HDC_THREADS";

/// Overrides the worker-thread count returned by [`default_threads`] for
/// the rest of the process. Pass `0` to clear the override and fall back to
/// the `HDC_THREADS` environment variable / hardware detection.
pub fn set_default_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, std::sync::atomic::Ordering::Relaxed);
}

/// Parses one `HDC_THREADS` value: a positive integer worker count. The
/// empty string resolves to `None` (unset). Anything else — zero,
/// negatives, non-numeric text — is rejected so a typo like
/// `HDC_THREADS=max` cannot silently fall back to hardware detection.
///
/// # Errors
///
/// Returns [`crate::BoostHdError::InvalidConfig`] naming the variable and
/// the offending value.
pub fn parse_threads_value(value: &str) -> crate::error::Result<Option<usize>> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(crate::BoostHdError::InvalidConfig {
            reason: format!(
                "environment variable {THREADS_ENV_VAR} holds unparseable value `{value}` \
                 (expected a positive integer)"
            ),
        }),
    }
}

/// [`default_threads`] with validated environment parsing: garbage
/// `HDC_THREADS` values surface as an error instead of a silent hardware
/// fallback. The facade ([`crate::Pipeline::fit`]) and the `hdrun` CLI go
/// through this form.
///
/// # Errors
///
/// As [`parse_threads_value`].
pub fn try_default_threads() -> crate::error::Result<usize> {
    let forced = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if forced > 0 {
        return Ok(forced);
    }
    let from_env = match std::env::var(THREADS_ENV_VAR) {
        Ok(v) => parse_threads_value(&v)?,
        Err(_) => None,
    };
    Ok(from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }))
}

/// Validates every runtime-tuning environment variable the stack consults
/// (`HDC_THREADS` here, `HDC_FORCE_SCALAR` in `linalg::kernels`,
/// `HDC_NO_AUTOTUNE` in `linalg::autotune`), mapping each failure to a
/// clear [`crate::BoostHdError::InvalidConfig`]. Called once per
/// [`crate::Pipeline::fit`] so config-driven deployments reject garbage
/// before any work starts.
///
/// # Errors
///
/// Returns the first invalid variable found.
pub fn validate_runtime_env() -> crate::error::Result<()> {
    try_default_threads()?;
    linalg::kernels::force_scalar_from_env().map_err(|e| crate::BoostHdError::InvalidConfig {
        reason: e.to_string(),
    })?;
    linalg::autotune::no_autotune_from_env().map_err(|e| crate::BoostHdError::InvalidConfig {
        reason: e.to_string(),
    })?;
    Ok(())
}

/// Number of worker threads to use by default, resolved in priority order:
///
/// 1. a programmatic [`set_default_threads`] override;
/// 2. the `HDC_THREADS` environment variable (positive integer);
/// 3. the machine's available parallelism, capped at 8 (the experiment
///    binaries never benefit beyond that at our batch sizes).
///
/// # Panics
///
/// Panics with a descriptive message when `HDC_THREADS` holds a value
/// [`parse_threads_value`] rejects (use [`try_default_threads`] to surface
/// the same condition as an error).
pub fn default_threads() -> usize {
    try_default_threads().unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indices(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let serial = parallel_map_indices(37, 1, |i| i as f32 * 0.5);
        let parallel = parallel_map_indices(37, 5, |i| i as f32 * 0.5);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pooled_and_scoped_backends_agree_for_every_shape() {
        for count in [0usize, 1, 2, 7, 33, 100] {
            for threads in [1usize, 2, 3, 8, 16] {
                let f = |i: usize| (i as f32).sin() * 1e3;
                let pooled = parallel_map_indices_with(ExecBackend::Pooled, count, threads, f);
                let scoped = parallel_map_indices_with(ExecBackend::Scoped, count, threads, f);
                assert_eq!(pooled, scoped, "count={count} threads={threads}");
            }
        }
    }

    #[test]
    fn chunk_bounds_cover_range_exactly_once() {
        for count in [0usize, 1, 5, 17, 100] {
            for workers in [1usize, 2, 3, 7, 100] {
                let mut covered = Vec::new();
                for w in 0..workers {
                    let (start, end) = chunk_bounds(count, workers, w);
                    assert!(start <= end && end <= count);
                    covered.extend(start..end);
                }
                assert_eq!(
                    covered,
                    (0..count).collect::<Vec<_>>(),
                    "count={count} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn exec_backend_tags_are_stable() {
        assert_eq!(ExecBackend::Pooled.tag(), "pooled");
        assert_eq!(ExecBackend::Scoped.tag(), "scoped");
        assert_eq!(ExecBackend::default(), ExecBackend::Pooled);
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = parallel_map_indices(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_indices(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn threads_value_parsing_accepts_positives_and_rejects_garbage() {
        // String-level tests: mutating the process environment would race
        // the other tests in this binary.
        assert_eq!(parse_threads_value("4").unwrap(), Some(4));
        assert_eq!(parse_threads_value(" 12 ").unwrap(), Some(12));
        assert_eq!(parse_threads_value("").unwrap(), None);
        for garbage in ["0", "-3", "max", "4.5", "eight", "1e2"] {
            let err = parse_threads_value(garbage).unwrap_err();
            assert!(err.to_string().contains("HDC_THREADS"), "{garbage}: {err}");
            assert!(err.to_string().contains(garbage), "{garbage}: {err}");
        }
    }

    #[test]
    fn force_scalar_parsing_rejects_garbage() {
        use linalg::kernels::parse_force_scalar_value;
        assert!(parse_force_scalar_value("1").unwrap());
        assert!(parse_force_scalar_value("TRUE").unwrap());
        assert!(!parse_force_scalar_value("0").unwrap());
        assert!(!parse_force_scalar_value("").unwrap());
        for garbage in ["yes", "2", "scalar", "on"] {
            let err = parse_force_scalar_value(garbage).unwrap_err();
            assert!(
                err.to_string().contains("HDC_FORCE_SCALAR"),
                "{garbage}: {err}"
            );
        }
    }

    #[test]
    fn no_autotune_parsing_rejects_garbage() {
        use linalg::autotune::parse_no_autotune_value;
        assert!(parse_no_autotune_value("1").unwrap());
        assert!(!parse_no_autotune_value("").unwrap());
        for garbage in ["yes", "2", "pinned"] {
            let err = parse_no_autotune_value(garbage).unwrap_err();
            assert!(
                err.to_string().contains("HDC_NO_AUTOTUNE"),
                "{garbage}: {err}"
            );
        }
    }

    #[test]
    fn validate_runtime_env_passes_in_clean_environments() {
        // CI never exports garbage values; locally this doubles as a guard
        // that the validation path stays wired.
        if std::env::var(THREADS_ENV_VAR).is_err() {
            assert!(validate_runtime_env().is_ok());
        }
    }

    #[test]
    fn setter_overrides_and_clears() {
        // Exercises the programmatic override end of the resolution order
        // (the env-var path would race other tests in this process).
        set_default_threads(5);
        assert_eq!(default_threads(), 5);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
