//! Scoped-thread helpers for parallel ensemble inference.
//!
//! The paper notes that while BoostHD *training* is inherently sequential
//! (each weak learner corrects its predecessors), *inference* parallelizes —
//! both across queries and across weak learners. This module provides the
//! small deterministic fork/join primitive the classifiers use, built on
//! `std::thread::scope` so no `'static` bounds leak into model code.

/// Applies `f` to every index in `0..count`, splitting the range into
/// `threads` contiguous chunks executed on scoped threads. Results are
/// returned in index order.
///
/// With `threads <= 1` (or a trivial range) the work runs inline, so callers
/// can use one code path for both serial and parallel execution.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_indices<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let chunk = count.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(count);
            let f = &f;
            handles.push(scope.spawn(move || (start..end).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Process-wide thread-count override set by [`set_default_threads`]
/// (0 = unset).
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Environment variable consulted by [`default_threads`] when no
/// programmatic override is set.
pub const THREADS_ENV_VAR: &str = "HDC_THREADS";

/// Overrides the worker-thread count returned by [`default_threads`] for
/// the rest of the process. Pass `0` to clear the override and fall back to
/// the `HDC_THREADS` environment variable / hardware detection.
pub fn set_default_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, std::sync::atomic::Ordering::Relaxed);
}

/// Number of worker threads to use by default, resolved in priority order:
///
/// 1. a programmatic [`set_default_threads`] override;
/// 2. the `HDC_THREADS` environment variable (positive integer);
/// 3. the machine's available parallelism, capped at 8 (the experiment
///    binaries never benefit beyond that at our batch sizes).
pub fn default_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indices(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let serial = parallel_map_indices(37, 1, |i| i as f32 * 0.5);
        let parallel = parallel_map_indices(37, 5, |i| i as f32 * 0.5);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = parallel_map_indices(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_indices(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn setter_overrides_and_clears() {
        // Exercises the programmatic override end of the resolution order
        // (the env-var path would race other tests in this process).
        set_default_threads(5);
        assert_eq!(default_threads(), 5);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
