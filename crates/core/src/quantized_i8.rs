//! Scaled-integer (int8) frozen inference models — the middle rung of the
//! quantization ladder.
//!
//! The 1-bit tier in [`crate::quantized`] shrinks models 32× but pays for
//! it in sign-rounding noise; the f32 tier keeps full fidelity at 4 bytes
//! per dimension. This module adds the intermediate point the wearable
//! accelerator literature actually ships: **symmetric per-row int8**. Each
//! trained class hypervector row is scaled by `s = max|v| / 127` and
//! rounded to `q = round(v / s) ∈ [-127, 127]`, so a model stores one
//! signed byte per dimension plus one f32 scale per class row — a ~4×
//! shrink with quantization error bounded by half a step per component.
//!
//! Scoring stays a faithful cosine approximation. With class row
//! `c ≈ s_c · q_c` and encoded query `h ≈ s_h · q_h`,
//!
//! ```text
//! cos(c, h) = (c · h) / (‖c‖ ‖h‖) ≈ dot_i8(q_c, q_h) · s_h / (‖q_c‖ ‖h‖)
//! ```
//!
//! — the class scale `s_c` cancels, so the score is exact in the class
//! row's magnitude and only approximate in its *direction* (and the
//! query's). The integer dot runs through the runtime-dispatched
//! [`linalg::kernels::dot_i8`] `maddubs` kernel, which is bit-exact across
//! dispatch levels, so int8 predictions are identical on AVX2 and scalar
//! hosts. The per-row inverse norms `1/‖q_c‖` are derived from the stored
//! bytes (never persisted), so a save → load round trip reproduces scores
//! bit-for-bit.
//!
//! For fault-injection studies the int8 models implement
//! [`faults::PerturbableI8`]: flips land on the two's-complement byte
//! encoding of stored components — the faithful single-event-upset model
//! for int8 weight memories, where one upset perturbs one component by a
//! power of two instead of an f32 exponent blow-up.
//!
//! # Quantization-aware refit
//!
//! As with the 1-bit tier, `quantize_i8_with_refit` runs straight-through
//! refinement: queries are scored against the *int8* class rows (exactly
//! what deployment will do) while OnlineHD updates accumulate in f32
//! shadow weights, and every touched row is re-quantized immediately. At
//! int8 the data-free rounding loss is already small, so refit is a
//! polish rather than a rescue.

use crate::boost::{BoostHd, Voting};
use crate::classifier::{argmax, argmax_rows, predict_batch_chunked, Classifier};
use crate::error::{BoostHdError, Result};
use crate::online::OnlineHd;
use crate::quantized::validate_refit_inputs;
use crate::CentroidHd;
use faults::{BitflipReport, PerturbableI8};
use hdc::encoder::{Encode, SinusoidEncoder};
use linalg::kernels::dot_i8;
use linalg::matrix::norm;
use linalg::{Matrix, Rng64, Storage};
use serde::{Deserialize, Serialize};

/// Symmetric per-row quantizer: fills `out` with
/// `round(v · 127 / max|v|)` clamped to `[-127, 127]` and returns the
/// dequantization scale `max|v| / 127`. An all-zero (or non-finite) row
/// quantizes to all zeros with scale `0.0`.
pub(crate) fn quantize_row_into(src: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    out.resize(src.len(), 0);
    // Two branch-free (vectorizable) passes: `f32::max` silently drops NaN
    // operands, so finiteness is tracked separately instead of folded into
    // the maximum.
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let all_finite = src.iter().fold(true, |ok, &v| ok & v.is_finite());
    if !(max_abs > 0.0 && max_abs.is_finite() && all_finite) {
        return 0.0;
    }
    let inv = 127.0 / max_abs;
    linalg::kernels::quantize_scale_i8(src, inv, out);
    max_abs / 127.0
}

/// A row-major block of int8-quantized rows: one signed byte per element,
/// one dequantization scale per row, plus derived (never persisted)
/// per-row inverse integer norms used by the cosine approximation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct I8Rows {
    data: Storage<i8>,
    scales: Vec<f32>,
    inv_qnorms: Vec<f32>,
    cols: usize,
}

impl I8Rows {
    /// Quantizes every row of a dense f32 matrix.
    pub(crate) fn from_dense(m: &Matrix) -> Self {
        let mut data = Vec::with_capacity(m.rows() * m.cols());
        let mut scales = Vec::with_capacity(m.rows());
        let mut qbuf = Vec::new();
        for r in 0..m.rows() {
            scales.push(quantize_row_into(m.row(r), &mut qbuf));
            data.extend_from_slice(&qbuf);
        }
        let mut rows = Self {
            data: data.into(),
            scales,
            inv_qnorms: Vec::new(),
            cols: m.cols(),
        };
        rows.refresh_inv_qnorms();
        rows
    }

    /// Reassembles from stored parts (the persistence path); inverse norms
    /// are re-derived from the bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] when `data` is not
    /// `scales.len() × cols` elements.
    #[cfg(test)]
    pub(crate) fn from_parts(data: Vec<i8>, scales: Vec<f32>, cols: usize) -> Result<Self> {
        Self::from_storage(data.into(), scales, cols)
    }

    /// [`I8Rows::from_parts`] over any backing storage — accepts a
    /// zero-copy shared view borrowed from a model-store blob as well as
    /// an owned byte vector. Shared rows stay borrowed until the first
    /// in-place mutation (refit, fault injection) promotes them.
    pub(crate) fn from_storage(data: Storage<i8>, scales: Vec<f32>, cols: usize) -> Result<Self> {
        if cols == 0 || data.len() != scales.len() * cols {
            return Err(BoostHdError::DataMismatch {
                reason: format!(
                    "int8 payload holds {} bytes, expected {} rows x {} cols",
                    data.len(),
                    scales.len(),
                    cols
                ),
            });
        }
        let mut rows = Self {
            data,
            scales,
            inv_qnorms: Vec::new(),
            cols,
        };
        rows.refresh_inv_qnorms();
        Ok(rows)
    }

    /// Whether the byte grid is a zero-copy view into a model-store blob.
    #[cfg(test)]
    pub(crate) fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    pub(crate) fn rows(&self) -> usize {
        self.scales.len()
    }

    pub(crate) fn cols(&self) -> usize {
        self.cols
    }

    pub(crate) fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub(crate) fn data(&self) -> &[i8] {
        &self.data
    }

    pub(crate) fn data_mut(&mut self) -> &mut [i8] {
        self.data.make_mut()
    }

    pub(crate) fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bytes a deployed int8 memory would hold for these rows: the `i8`
    /// grid plus one f32 scale per row (derived norms excluded — they are
    /// recomputed at load).
    pub(crate) fn storage_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Recomputes the derived `1/‖q_r‖` cache from the stored bytes —
    /// required after any in-place mutation of `data` (refit row updates,
    /// fault injection).
    pub(crate) fn refresh_inv_qnorms(&mut self) {
        let cols = self.cols.max(1);
        self.inv_qnorms = self
            .data
            .chunks(cols)
            .map(|row| {
                let n2: i64 = row.iter().map(|&q| (q as i64) * (q as i64)).sum();
                if n2 == 0 {
                    0.0
                } else {
                    (1.0 / (n2 as f64).sqrt()) as f32
                }
            })
            .collect();
    }

    /// Re-quantizes row `r` from fresh f32 values (the refit path).
    fn set_row_from(&mut self, r: usize, src: &[f32], qbuf: &mut Vec<i8>) {
        self.scales[r] = quantize_row_into(src, qbuf);
        let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
        row.copy_from_slice(qbuf);
        let n2: i64 = row.iter().map(|&q| (q as i64) * (q as i64)).sum();
        self.inv_qnorms[r] = if n2 == 0 {
            0.0
        } else {
            (1.0 / (n2 as f64).sqrt()) as f32
        };
    }

    /// Approximate per-row cosine scores of query `h` against every stored
    /// row (see the [module docs](self) for the formula). `qbuf` is caller
    /// scratch and holds the quantized query on return.
    fn scores_into(&self, h: &[f32], qbuf: &mut Vec<i8>, out: &mut [f32]) {
        debug_assert_eq!(h.len(), self.cols);
        let f = query_factor(h, qbuf);
        self.scores_quantized_into(qbuf, f, out);
    }

    /// The integer-dot sweep alone: scores an already-quantized query
    /// (bytes `q`, combined cosine factor `f`) against every stored row.
    /// Exactly the arithmetic [`I8Rows::scores_into`] performs after
    /// quantizing, so pre-quantized and on-the-fly scoring agree
    /// bit-for-bit.
    fn scores_quantized_into(&self, q: &[i8], f: f32, out: &mut [f32]) {
        debug_assert_eq!(q.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows());
        if f == 0.0 {
            out.fill(0.0);
            return;
        }
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot_i8(self.row(r), q) as f32 * self.inv_qnorms[r] * f;
        }
    }
}

/// Quantizes encoded query `h` into `qbuf` and returns its combined cosine
/// factor `s_h / ‖h‖` — `0.0` for degenerate (zero or non-finite) queries,
/// in which case every score is defined as `0.0`.
fn query_factor(h: &[f32], qbuf: &mut Vec<i8>) -> f32 {
    let hn = norm(h);
    let qscale = quantize_row_into(h, qbuf);
    if hn == 0.0 || qscale == 0.0 || !hn.is_finite() {
        0.0
    } else {
        qscale / hn
    }
}

/// An encoded query pre-quantized for the int8 associative-memory sweep:
/// the signed-byte vector plus its combined cosine factor `s_h / ‖h‖`.
///
/// Quantizing the query costs several f32 passes over `D` values; the
/// integer-dot sweep it feeds costs one byte-pass per class row. When one
/// query is scored against many int8 memories — BoostHD weak learners, a
/// per-patient model fleet, or a throughput benchmark's class-memory sweep
/// — preparing the query once and reusing it amortizes that cost away,
/// exactly like [`hdc::backend::PackedHv`] does for the 1-bit tier.
/// [`QuantizedI8Hd::scores_quantized_into`] consumes it; results are
/// bit-identical to [`QuantizedI8Hd::scores_encoded`] on the same `h`.
#[derive(Debug, Clone)]
pub struct QuantizedI8Query {
    q: Vec<i8>,
    f: f32,
}

impl QuantizedI8Query {
    /// Quantizes an already-encoded hypervector (degenerate inputs yield a
    /// query that scores `0.0` everywhere, matching the dense paths).
    pub fn from_encoded(h: &[f32]) -> Self {
        let mut q = Vec::new();
        let f = query_factor(h, &mut q);
        Self { q, f }
    }

    /// Hyperspace dimensionality `D` of the quantized query.
    pub fn dim(&self) -> usize {
        self.q.len()
    }
}

/// Straight-through refinement of one class matrix at int8: score queries
/// against the quantized rows (the deployment arithmetic), update f32
/// shadow weights with the OnlineHD rule on misclassification, and
/// re-quantize the touched rows. Returns the final int8 rows.
fn refit_i8_classes(
    z: &Matrix,
    y: &[usize],
    shadow: &mut Matrix,
    lr: f32,
    epochs: usize,
) -> I8Rows {
    let mut classes = I8Rows::from_dense(shadow);
    let mut qbuf: Vec<i8> = Vec::new();
    let mut sims = vec![0.0f32; shadow.rows()];
    for _epoch in 0..epochs {
        for (r, &truth) in y.iter().enumerate() {
            let h = z.row(r);
            classes.scores_into(h, &mut qbuf, &mut sims);
            let pred = argmax(&sims);
            if pred == truth {
                continue;
            }
            let hn = norm(h);
            if hn == 0.0 {
                continue;
            }
            // The int8 scores live on the cosine scale, so the (1 − δ)
            // error weighting carries over from the f32 update rule.
            hdc::ops::bundle_into(shadow.row_mut(truth), h, lr * (1.0 - sims[truth]) / hn);
            hdc::ops::bundle_into(shadow.row_mut(pred), h, -lr * (1.0 - sims[pred]) / hn);
            classes.set_row_from(truth, shadow.row(truth), &mut qbuf);
            classes.set_row_from(pred, shadow.row(pred), &mut qbuf);
        }
    }
    classes
}

/// A frozen single-learner HDC classifier with int8 class hypervectors
/// (quantized [`OnlineHd`] or [`CentroidHd`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedI8Hd {
    encoder: SinusoidEncoder,
    classes: I8Rows,
    num_classes: usize,
}

impl QuantizedI8Hd {
    pub(crate) fn from_class_matrix(
        encoder: SinusoidEncoder,
        class_hvs: &Matrix,
        num_classes: usize,
    ) -> Self {
        Self {
            encoder,
            classes: I8Rows::from_dense(class_hvs),
            num_classes,
        }
    }

    /// Reassembles a model from stored parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for inconsistent shapes.
    pub(crate) fn from_parts(
        encoder: SinusoidEncoder,
        classes: I8Rows,
        num_classes: usize,
    ) -> Result<Self> {
        if classes.rows() != num_classes {
            return Err(BoostHdError::DataMismatch {
                reason: "int8 class count disagrees with header".into(),
            });
        }
        if classes.cols() != encoder.dim() {
            return Err(BoostHdError::DataMismatch {
                reason: "int8 class width disagrees with encoder".into(),
            });
        }
        Ok(Self {
            encoder,
            classes,
            num_classes,
        })
    }

    /// Hyperspace dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.classes.cols()
    }

    /// The (f32) query encoder.
    pub fn encoder(&self) -> &SinusoidEncoder {
        &self.encoder
    }

    pub(crate) fn classes(&self) -> &I8Rows {
        &self.classes
    }

    /// Bytes of class-hypervector storage a deployed int8 memory would
    /// hold (bytes + per-row scales; excludes the shared projection).
    pub fn class_storage_bytes(&self) -> usize {
        self.classes.storage_bytes()
    }

    /// Per-class similarities for an already-encoded hypervector `h`
    /// (quantize + integer-dot sweep, no encode) — the int8 analogue of
    /// [`crate::OnlineHd::scores_encoded`] and
    /// [`crate::QuantizedHd::scores_packed`], so scoring-tier comparisons
    /// can time the associative-memory sweep in isolation.
    pub fn scores_encoded(&self, h: &[f32]) -> Vec<f32> {
        let mut qbuf = Vec::new();
        let mut out = vec![0.0f32; self.num_classes];
        self.scores_encoded_into(h, &mut qbuf, &mut out);
        out
    }

    /// Allocation-free [`QuantizedI8Hd::scores_encoded`]: `qbuf` is
    /// caller-owned scratch for the quantized query (reused across calls),
    /// `out` must hold `num_classes` slots. The hot form a serving loop or
    /// throughput benchmark should call.
    pub fn scores_encoded_into(&self, h: &[f32], qbuf: &mut Vec<i8>, out: &mut [f32]) {
        self.classes.scores_into(h, qbuf, out);
    }

    /// Per-class similarities for a pre-quantized query — the integer-dot
    /// sweep alone, bit-identical to [`QuantizedI8Hd::scores_encoded`] on
    /// the hypervector the query was built from. Use when one query is
    /// scored against several int8 memories (see [`QuantizedI8Query`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the query dimensionality disagrees with
    /// the model's.
    pub fn scores_quantized_into(&self, query: &QuantizedI8Query, out: &mut [f32]) {
        self.classes.scores_quantized_into(&query.q, query.f, out);
    }

    /// Predicts every row of `x` using `threads` worker threads, each
    /// running the batched encode + int8 dot sweep on a contiguous chunk.
    /// Identical to [`Classifier::predict_batch`] for any thread count.
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        predict_batch_chunked(self, x, threads)
    }
}

impl Classifier for QuantizedI8Hd {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let h = self.encoder.encode_row(x);
        let mut qbuf = Vec::new();
        let mut out = vec![0.0f32; self.num_classes];
        self.classes.scores_into(&h, &mut qbuf, &mut out);
        out
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        // Walk the batch in autotuned row chunks through a reused encode
        // buffer; each encoded row quantizes into a reused scratch and one
        // integer-dot sweep scores it against the class bytes. Chunking
        // only batches the encode GEMM — every score is a per-row
        // computation, so the chunk width cannot change results.
        let mut out = Matrix::zeros(x.rows(), self.num_classes);
        let mut zbuf = Matrix::zeros(0, 0);
        let mut qbuf: Vec<i8> = Vec::new();
        let chunk = linalg::autotune::score_chunk();
        let mut start = 0;
        while start < x.rows() {
            let end = (start + chunk).min(x.rows());
            self.encoder
                .encode_batch_into(&x.slice_rows(start, end), &mut zbuf);
            for r in 0..zbuf.rows() {
                self.classes
                    .scores_into(zbuf.row(r), &mut qbuf, out.row_mut(start + r));
            }
            start = end;
        }
        out
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.scores_batch(x))
    }
}

impl PerturbableI8 for QuantizedI8Hd {
    fn i8_buffers_mut(&mut self) -> Vec<&mut [i8]> {
        vec![self.classes.data_mut()]
    }
}

/// [`faults::flip_i8_bits`] plus the derived-norm refresh the model needs
/// afterwards — what a deployed loader would recompute from the corrupted
/// bytes. This is the injection hook the pipeline layer dispatches to.
pub(crate) fn flip_hd_i8_bits(
    model: &mut QuantizedI8Hd,
    p_b: f64,
    rng: &mut Rng64,
) -> BitflipReport {
    let report = faults::flip_i8_bits(model, p_b, rng);
    model.classes.refresh_inv_qnorms();
    report
}

impl OnlineHd {
    /// Freezes the trained model into a scaled-integer inference model:
    /// class hypervectors quantized to symmetric per-row int8, scoring via
    /// the widening integer dot kernel. See the [module docs](self).
    pub fn quantize_i8(&self) -> QuantizedI8Hd {
        QuantizedI8Hd::from_class_matrix(
            self.encoder().clone(),
            self.class_hypervectors(),
            self.num_classes(),
        )
    }

    /// [`OnlineHd::quantize_i8`] preceded by `epochs` of quantization-aware
    /// refinement on `(x, y)` (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for empty/inconsistent refit
    /// data or out-of-range labels.
    pub fn quantize_i8_with_refit(
        &self,
        x: &Matrix,
        y: &[usize],
        epochs: usize,
    ) -> Result<QuantizedI8Hd> {
        validate_refit_inputs(x, y, self.encoder().input_len(), self.num_classes())?;
        let z = self.encoder().encode_batch(x);
        let mut shadow = self.class_hypervectors().clone();
        let classes = refit_i8_classes(&z, y, &mut shadow, self.config().lr, epochs);
        QuantizedI8Hd::from_parts(self.encoder().clone(), classes, self.num_classes())
    }
}

impl CentroidHd {
    /// Freezes the trained model into a scaled-integer inference model;
    /// see [`OnlineHd::quantize_i8`].
    pub fn quantize_i8(&self) -> QuantizedI8Hd {
        QuantizedI8Hd::from_class_matrix(
            self.encoder().clone(),
            self.class_hypervectors(),
            self.num_classes(),
        )
    }
}

/// One frozen weak learner: int8 class hypervectors plus its vote weight
/// and hyperspace segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct QuantizedI8WeakLearner {
    pub(crate) classes: I8Rows,
    pub(crate) alpha: f32,
    pub(crate) seg_start: usize,
    pub(crate) seg_end: usize,
    /// Present only for full-dimension (ablation-mode) ensembles.
    pub(crate) own_encoder: Option<SinusoidEncoder>,
}

/// A frozen BoostHD ensemble with int8 weak learners.
///
/// Inference encodes the query once at full `D` with the f32 projection,
/// quantizes each weak learner's segment independently (each segment gets
/// its own query scale), and aggregates `α`-weighted integer-dot cosine
/// votes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedI8BoostHd {
    encoder: SinusoidEncoder,
    learners: Vec<QuantizedI8WeakLearner>,
    num_classes: usize,
    voting: Voting,
    dim_total: usize,
}

impl QuantizedI8BoostHd {
    pub(crate) fn from_model(model: &BoostHd) -> Self {
        let learners = (0..model.num_learners())
            .map(|i| {
                let (alpha, seg_start, seg_end, own_encoder) = model.learner_parts(i);
                QuantizedI8WeakLearner {
                    classes: I8Rows::from_dense(model.learner_class_hypervectors(i)),
                    alpha,
                    seg_start,
                    seg_end,
                    own_encoder: own_encoder.cloned(),
                }
            })
            .collect();
        Self {
            encoder: model.encoder().clone(),
            learners,
            num_classes: model.num_classes(),
            voting: model.config().voting,
            dim_total: model.dim_total(),
        }
    }

    /// Reassembles an ensemble from stored parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for inconsistent segments or
    /// class shapes.
    pub(crate) fn from_parts(
        encoder: SinusoidEncoder,
        learners: Vec<QuantizedI8WeakLearner>,
        num_classes: usize,
        voting: Voting,
        dim_total: usize,
    ) -> Result<Self> {
        for l in &learners {
            if l.seg_start > l.seg_end || l.seg_end > dim_total {
                return Err(BoostHdError::DataMismatch {
                    reason: format!("segment {}..{} out of bounds", l.seg_start, l.seg_end),
                });
            }
            if l.classes.rows() != num_classes {
                return Err(BoostHdError::DataMismatch {
                    reason: "learner class count disagrees with header".into(),
                });
            }
            match &l.own_encoder {
                None if l.classes.cols() != l.seg_end - l.seg_start => {
                    return Err(BoostHdError::DataMismatch {
                        reason: "int8 class width disagrees with segment".into(),
                    });
                }
                Some(enc) if l.classes.cols() != enc.dim() => {
                    return Err(BoostHdError::DataMismatch {
                        reason: "int8 class width disagrees with learner encoder".into(),
                    });
                }
                _ => {}
            }
        }
        Ok(Self {
            encoder,
            learners,
            num_classes,
            voting,
            dim_total,
        })
    }

    /// Number of weak learners `N_L`.
    pub fn num_learners(&self) -> usize {
        self.learners.len()
    }

    /// Total hyperspace dimensionality `D_total`.
    pub fn dim_total(&self) -> usize {
        self.dim_total
    }

    /// Vote aggregation rule inherited from the f32 ensemble.
    pub fn voting(&self) -> Voting {
        self.voting
    }

    /// The shared full-`D` (f32) query encoder.
    pub fn encoder(&self) -> &SinusoidEncoder {
        &self.encoder
    }

    /// Vote weights `α_i`, in training order.
    pub fn alphas(&self) -> Vec<f32> {
        self.learners.iter().map(|l| l.alpha).collect()
    }

    /// Bytes of int8 class-hypervector storage across all weak learners.
    pub fn class_storage_bytes(&self) -> usize {
        self.learners
            .iter()
            .map(|l| l.classes.storage_bytes())
            .sum()
    }

    pub(crate) fn learners(&self) -> &[QuantizedI8WeakLearner] {
        &self.learners
    }

    /// `α`-weighted int8 cosine votes for a query whose full-`D` dense
    /// encoding is `full_h` (`x` is the raw feature row, needed only by
    /// full-dimension ablation learners).
    fn votes_for_encoded(&self, full_h: &[f32], x: &[f32]) -> Vec<f32> {
        let mut votes = vec![0.0f32; self.num_classes];
        let mut qbuf: Vec<i8> = Vec::new();
        let mut sims = vec![0.0f32; self.num_classes];
        for learner in &self.learners {
            match &learner.own_encoder {
                None => {
                    let seg = &full_h[learner.seg_start..learner.seg_end];
                    learner.classes.scores_into(seg, &mut qbuf, &mut sims);
                }
                Some(enc) => {
                    let h = enc.encode_row(x);
                    learner.classes.scores_into(&h, &mut qbuf, &mut sims);
                }
            }
            match self.voting {
                Voting::Hard => votes[argmax(&sims)] += learner.alpha,
                Voting::Soft => {
                    for (v, s) in votes.iter_mut().zip(sims.iter()) {
                        *v += learner.alpha * s;
                    }
                }
            }
        }
        votes
    }

    /// Predicts every row of `x` using `threads` worker threads, each
    /// running the batched encode + per-learner integer-dot sweeps on a
    /// contiguous chunk. Identical to [`Classifier::predict_batch`] for
    /// any thread count.
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        predict_batch_chunked(self, x, threads)
    }
}

impl Classifier for QuantizedI8BoostHd {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let needs_full = self.learners.iter().any(|l| l.own_encoder.is_none());
        let full_h = if needs_full {
            self.encoder.encode_row(x)
        } else {
            Vec::new()
        };
        self.votes_for_encoded(&full_h, x)
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        // Walk the batch in autotuned row chunks through a reused encode
        // buffer; each chunk is encoded once at full `D`, then every weak
        // learner quantizes its segment of each row and scores it with the
        // integer-dot sweep — learners visited in training order so the
        // `α`-weighted vote sums accumulate exactly like the row path.
        let mut votes = Matrix::zeros(x.rows(), self.num_classes);
        let needs_full = self.learners.iter().any(|l| l.own_encoder.is_none());
        let mut zbuf = Matrix::zeros(0, 0);
        let mut own_zbuf = Matrix::zeros(0, 0);
        let mut qbuf: Vec<i8> = Vec::new();
        let mut sims = vec![0.0f32; self.num_classes];
        let chunk = linalg::autotune::score_chunk();
        let mut start = 0;
        while start < x.rows() {
            let end = (start + chunk).min(x.rows());
            let xc = x.slice_rows(start, end);
            if needs_full {
                self.encoder.encode_batch_into(&xc, &mut zbuf);
            }
            for learner in &self.learners {
                let seg_rows: &Matrix = match &learner.own_encoder {
                    None => &zbuf,
                    Some(enc) => {
                        enc.encode_batch_into(&xc, &mut own_zbuf);
                        &own_zbuf
                    }
                };
                for r in 0..xc.rows() {
                    let seg = match &learner.own_encoder {
                        None => &seg_rows.row(r)[learner.seg_start..learner.seg_end],
                        Some(_) => seg_rows.row(r),
                    };
                    learner.classes.scores_into(seg, &mut qbuf, &mut sims);
                    let vote_row = votes.row_mut(start + r);
                    match self.voting {
                        Voting::Hard => vote_row[argmax(&sims)] += learner.alpha,
                        Voting::Soft => {
                            for (v, s) in vote_row.iter_mut().zip(sims.iter()) {
                                *v += learner.alpha * s;
                            }
                        }
                    }
                }
            }
            start = end;
        }
        votes
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.scores_batch(x))
    }
}

impl PerturbableI8 for QuantizedI8BoostHd {
    fn i8_buffers_mut(&mut self) -> Vec<&mut [i8]> {
        self.learners
            .iter_mut()
            .map(|l| l.classes.data_mut())
            .collect()
    }
}

/// [`faults::flip_i8_bits`] plus the per-learner derived-norm refresh; the
/// pipeline layer's injection hook for int8 ensembles.
pub(crate) fn flip_boost_i8_bits(
    model: &mut QuantizedI8BoostHd,
    p_b: f64,
    rng: &mut Rng64,
) -> BitflipReport {
    let report = faults::flip_i8_bits(model, p_b, rng);
    for l in &mut model.learners {
        l.classes.refresh_inv_qnorms();
    }
    report
}

impl BoostHd {
    /// Freezes the trained ensemble into a scaled-integer inference model:
    /// every weak learner's class hypervectors quantized to symmetric
    /// per-row int8, votes scored via the widening integer dot. See the
    /// [module docs](self).
    pub fn quantize_i8(&self) -> QuantizedI8BoostHd {
        QuantizedI8BoostHd::from_model(self)
    }

    /// [`BoostHd::quantize_i8`] preceded by `epochs` of per-learner
    /// quantization-aware refinement on `(x, y)`; the int8 counterpart of
    /// [`BoostHd::quantize_with_refit`].
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for empty/inconsistent refit
    /// data or out-of-range labels.
    pub fn quantize_i8_with_refit(
        &self,
        x: &Matrix,
        y: &[usize],
        epochs: usize,
    ) -> Result<QuantizedI8BoostHd> {
        validate_refit_inputs(x, y, self.encoder().input_len(), self.num_classes())?;
        let z = self.encoder().encode_batch(x);
        let learners = (0..self.num_learners())
            .map(|i| {
                let (alpha, seg_start, seg_end, own_encoder) = self.learner_parts(i);
                let zi = match own_encoder {
                    None => z.slice_columns(seg_start, seg_end),
                    Some(enc) => enc.encode_batch(x),
                };
                let mut shadow = self.learner_class_hypervectors(i).clone();
                let classes = refit_i8_classes(&zi, y, &mut shadow, self.config().lr, epochs);
                QuantizedI8WeakLearner {
                    classes,
                    alpha,
                    seg_start,
                    seg_end,
                    own_encoder: own_encoder.cloned(),
                }
            })
            .collect();
        QuantizedI8BoostHd::from_parts(
            self.encoder().clone(),
            learners,
            self.num_classes(),
            self.config().voting,
            self.dim_total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boost::BoostHdConfig;
    use crate::online::OnlineHdConfig;

    fn blobs(n: usize, seed: u64, sep: f32, noise: f32) -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(seed);
        let centers = [(-1.0f32, -1.0f32), (1.0, 1.0), (-1.0, 1.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = centers[class];
            rows.push(vec![
                cx * sep + noise * rng.normal(),
                cy * sep + noise * rng.normal(),
                noise * rng.normal(),
            ]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn accuracy(model: &impl Classifier, x: &Matrix, y: &[usize]) -> f64 {
        model
            .predict_batch(x)
            .iter()
            .zip(y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64
    }

    #[test]
    fn quantize_row_handles_degenerate_inputs() {
        let mut q = Vec::new();
        assert_eq!(quantize_row_into(&[0.0, 0.0, 0.0], &mut q), 0.0);
        assert_eq!(q, vec![0, 0, 0]);
        assert_eq!(quantize_row_into(&[f32::NAN, 1.0], &mut q), 0.0);
        assert_eq!(q, vec![0, 0]);
        let scale = quantize_row_into(&[-2.0, 1.0, 0.5], &mut q);
        assert!((scale - 2.0 / 127.0).abs() < 1e-9);
        assert_eq!(q, vec![-127, 64, 32]);
    }

    #[test]
    fn quantize_row_error_is_within_half_step() {
        let mut rng = Rng64::seed_from(5);
        let src: Vec<f32> = (0..1000).map(|_| rng.normal()).collect();
        let mut q = Vec::new();
        let scale = quantize_row_into(&src, &mut q);
        for (&v, &qi) in src.iter().zip(q.iter()) {
            assert!(qi != i8::MIN);
            let err = (v - scale * qi as f32).abs();
            assert!(
                err <= 0.5 * scale * (1.0 + 1e-4),
                "err {err} exceeds half step {}",
                0.5 * scale
            );
        }
    }

    #[test]
    fn i8_scores_track_f32_scores() {
        // Satellite property: the int8 cosine approximation must stay
        // within a small absolute band of the f32 scores — quantization
        // error is bounded by half a step per component in both operands.
        let (x, y) = blobs(240, 1, 1.0, 0.35);
        let config = OnlineHdConfig {
            dim: 2048,
            epochs: 10,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize_i8();
        let f32_scores = model.scores_batch(&x);
        let i8_scores = quantized.scores_batch(&x);
        let mut max_err = 0.0f32;
        for r in 0..x.rows() {
            for (a, b) in f32_scores.row(r).iter().zip(i8_scores.row(r)) {
                max_err = max_err.max((a - b).abs());
            }
        }
        assert!(
            max_err < 0.05,
            "int8 scores drifted {max_err} from f32 cosine"
        );
    }

    #[test]
    fn prequantized_queries_score_bit_identically() {
        let (x, y) = blobs(120, 12, 1.0, 0.4);
        let config = OnlineHdConfig {
            dim: 512,
            epochs: 4,
            ..Default::default()
        };
        let quantized = OnlineHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let mut out = vec![0.0f32; quantized.num_classes()];
        for r in 0..x.rows() {
            let h = quantized.encoder().encode_row(x.row(r));
            let query = QuantizedI8Query::from_encoded(&h);
            assert_eq!(query.dim(), quantized.dim());
            quantized.scores_quantized_into(&query, &mut out);
            assert_eq!(out, quantized.scores_encoded(&h), "row {r}");
        }
        // Degenerate queries score 0.0 everywhere on both paths.
        let zero = QuantizedI8Query::from_encoded(&vec![0.0f32; quantized.dim()]);
        quantized.scores_quantized_into(&zero, &mut out);
        assert_eq!(out, vec![0.0; quantized.num_classes()]);
    }

    #[test]
    fn quantized_i8_onlinehd_tracks_f32_accuracy() {
        let (x, y) = blobs(240, 1, 1.0, 0.35);
        let config = OnlineHdConfig {
            dim: 2048,
            epochs: 10,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize_i8();
        let full = accuracy(&model, &x, &y);
        let quant = accuracy(&quantized, &x, &y);
        assert!(quant > full - 0.02, "int8 {quant} vs f32 {full}");
        assert_eq!(quantized.num_classes(), 3);
        assert_eq!(quantized.dim(), 2048);
    }

    #[test]
    fn quantized_i8_boosthd_tracks_f32_accuracy() {
        let (x, y) = blobs(240, 2, 1.0, 0.35);
        let config = BoostHdConfig {
            dim_total: 2048,
            n_learners: 8,
            epochs: 8,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize_i8();
        let full = accuracy(&model, &x, &y);
        let quant = accuracy(&quantized, &x, &y);
        assert!(quant > full - 0.02, "int8 {quant} vs f32 {full}");
        assert_eq!(quantized.num_learners(), 8);
        assert_eq!(quantized.alphas(), model.alphas());
    }

    #[test]
    fn i8_batch_matches_rowwise() {
        let (x, y) = blobs(90, 3, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 640,
            n_learners: 8,
            epochs: 6,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let batch = quantized.predict_batch(&x);
        let rowwise: Vec<usize> = (0..x.rows()).map(|r| quantized.predict(x.row(r))).collect();
        assert_eq!(batch, rowwise);
        assert_eq!(batch, quantized.predict_batch_parallel(&x, 4));
    }

    #[test]
    fn quantized_i8_centroid_works() {
        let (x, y) = blobs(120, 4, 1.2, 0.3);
        let config = crate::CentroidHdConfig {
            dim: 1024,
            ..Default::default()
        };
        let model = CentroidHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize_i8();
        assert!(accuracy(&quantized, &x, &y) > 0.9);
    }

    #[test]
    fn quantized_i8_full_dimension_mode_works() {
        use crate::boost::EnsembleMode;
        let (x, y) = blobs(120, 5, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 256,
            n_learners: 4,
            epochs: 5,
            mode: EnsembleMode::FullDimension,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize_i8();
        assert!(accuracy(&quantized, &x, &y) > 0.85);
        assert_eq!(
            quantized.predict_batch(&x),
            quantized.predict_batch_parallel(&x, 3)
        );
    }

    #[test]
    fn storage_shrinks_about_4x_versus_f32_classes() {
        let (x, y) = blobs(90, 6, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 640,
            n_learners: 5,
            epochs: 4,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize_i8();
        let f32_bytes: usize = (0..model.num_learners())
            .map(|i| model.learner_class_hypervectors(i).as_slice().len() * 4)
            .sum();
        let i8_bytes = quantized.class_storage_bytes();
        // One byte per element plus one f32 scale per class row: just
        // under 4× for any realistic D_wl.
        assert!(i8_bytes * 3 < f32_bytes && f32_bytes < i8_bytes * 5);
    }

    #[test]
    fn i8_refit_improves_or_matches_data_free_quantization() {
        let (x, y) = blobs(300, 10, 0.7, 0.55);
        let config = BoostHdConfig {
            dim_total: 320,
            n_learners: 8,
            epochs: 8,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let plain = accuracy(&model.quantize_i8(), &x, &y);
        let refit = accuracy(&model.quantize_i8_with_refit(&x, &y, 5).unwrap(), &x, &y);
        assert!(
            refit >= plain,
            "refit {refit} should not trail data-free {plain}"
        );
        // Zero refit epochs degenerates to data-free quantization.
        let zero = model.quantize_i8_with_refit(&x, &y, 0).unwrap();
        assert_eq!(
            zero.predict_batch(&x),
            model.quantize_i8().predict_batch(&x)
        );
    }

    #[test]
    fn i8_refit_rejects_bad_inputs() {
        let (x, y) = blobs(60, 11, 1.0, 0.4);
        let config = OnlineHdConfig {
            dim: 256,
            epochs: 4,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let empty = Matrix::zeros(0, 3);
        assert!(model.quantize_i8_with_refit(&empty, &[], 3).is_err());
        assert!(model.quantize_i8_with_refit(&x, &y[..10], 3).is_err());
        let bad_labels = vec![99usize; y.len()];
        assert!(model.quantize_i8_with_refit(&x, &bad_labels, 3).is_err());
    }

    #[test]
    fn i8_bitflips_land_on_stored_bytes() {
        let (x, y) = blobs(120, 7, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 640,
            n_learners: 8,
            epochs: 6,
            ..Default::default()
        };
        let mut quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let before = quantized.clone();
        let mut rng = Rng64::seed_from(0);
        let report = flip_boost_i8_bits(&mut quantized, 0.01, &mut rng);
        assert!(report.flipped > 0);
        let changed = (0..quantized.num_learners())
            .any(|i| quantized.learners()[i].classes.data() != before.learners()[i].classes.data());
        assert!(changed);
        // Scoring a corrupted model must not panic even if a flip produced
        // -128 somewhere in the stored bytes.
        let _ = quantized.predict_batch(&x);
    }

    #[test]
    fn i8_ensemble_absorbs_moderate_bitflips() {
        let (x, y) = blobs(240, 8, 1.0, 0.35);
        let config = BoostHdConfig {
            dim_total: 2048,
            n_learners: 8,
            epochs: 8,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize_i8();
        let clean = accuracy(&quantized, &x, &y);
        let mut corrupted = quantized.clone();
        let mut rng = Rng64::seed_from(3);
        flip_boost_i8_bits(&mut corrupted, 1e-4, &mut rng);
        let faulty = accuracy(&corrupted, &x, &y);
        assert!(
            faulty > clean - 0.05,
            "sparse int8 flips should be absorbed: {clean} -> {faulty}"
        );
    }

    #[test]
    fn from_parts_validates_shapes() {
        let (x, y) = blobs(60, 9, 1.0, 0.4);
        let config = OnlineHdConfig {
            dim: 128,
            epochs: 3,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let q = model.quantize_i8();
        // Wrong class count must be rejected.
        let rows = I8Rows::from_parts(
            q.classes().data().to_vec(),
            q.classes().scales().to_vec(),
            128,
        )
        .unwrap();
        assert!(QuantizedI8Hd::from_parts(q.encoder().clone(), rows, 7).is_err());
        // Inconsistent byte payload must be rejected.
        assert!(I8Rows::from_parts(vec![0i8; 10], vec![0.1; 3], 4).is_err());
    }
}
