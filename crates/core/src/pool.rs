//! A persistent, channel-fed worker pool shared by serving and training.
//!
//! [`crate::parallel::parallel_map_indices`] used to re-create a
//! `std::thread::scope` — and therefore spawn and join fresh OS threads —
//! on *every* batch. That is fine for a training loop that calls it a
//! handful of times, and wrong for a long-lived server flushing thousands
//! of micro-batches per second. [`WorkerPool`] keeps a fixed set of worker
//! threads alive for the life of the process and feeds them work through a
//! shared queue, so a batch fan-out costs two mutex hops instead of
//! `threads` spawns.
//!
//! Design contract (each point is pinned by a test):
//!
//! * **Bit-identical results.** [`WorkerPool::scoped_map`] splits `0..count`
//!   with the *same* chunking function
//!   ([`crate::parallel::chunk_bounds`]) as the scoped-thread path and
//!   returns results in index order, so pooled and scoped execution of any
//!   row-independent kernel produce identical output for every thread
//!   count.
//! * **Panic isolation.** A panic inside the mapped closure is caught on
//!   the worker, carried back, and re-raised on the *calling* thread —
//!   exactly the scoped-path contract — while the worker itself survives.
//!   A worker thread that dies anyway (see
//!   [`WorkerPool::inject_worker_panic`], the chaos hook) is detected and
//!   replaced, so one poisoned request cannot sink the pool.
//! * **Graceful shutdown.** [`WorkerPool::shutdown`] lets workers drain
//!   every queued task before they exit and joins them; in-flight
//!   [`WorkerPool::scoped_map`] calls still complete (the caller
//!   self-drains its own tasks if no worker is left to run them).
//! * **Deadlock-free nesting.** A `scoped_map` issued *from inside* a pool
//!   worker (e.g. a reliability-campaign trial refitting a model whose
//!   `fit` fans out) falls back to scoped threads instead of queueing onto
//!   the pool it is running on.
//!
//! The process-wide instance ([`global`]) is sized once from
//! [`crate::parallel::default_threads`] (`HDC_THREADS`-aware) on first
//! use. Requesting more chunks than there are workers is fine — chunking
//! follows the *requested* thread count for determinism, and excess chunks
//! simply queue.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::parallel::{chunk_bounds, parallel_map_indices_scoped};

/// Locks tolerating poisoning: a panicking worker must never wedge the
/// queue for everyone else (panics are already surfaced through the scope
/// state, not through lock poisoning).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

std::thread_local! {
    /// Set while the current thread is executing pool work, so nested
    /// fan-outs fall back to scoped threads instead of deadlocking on the
    /// pool they occupy.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` when called from inside a pool worker (or a caller currently
/// helping the pool execute its own tasks).
pub fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

/// One unit of queued work.
enum Task {
    /// A type-erased chunk closure (panics are caught inside it).
    Run(Box<dyn FnOnce() + Send + 'static>),
    /// Test-only chaos: panic *outside* any catch, killing the worker
    /// thread itself, to exercise worker replacement.
    KillWorker,
    /// Test-only chaos: hold one worker hostage for the duration, so stall
    /// watchdogs have something to detect.
    StallWorker(Duration),
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when a task is enqueued or shutdown begins.
    task_ready: Condvar,
}

impl Shared {
    /// Worker body: pop tasks until the queue is drained *and* shutdown was
    /// requested (so a graceful shutdown completes all queued work first).
    fn worker_loop(self: &Arc<Self>) {
        IN_POOL_WORKER.with(|f| f.set(true));
        loop {
            let task = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(t) = q.tasks.pop_front() {
                        break t;
                    }
                    if q.shutting_down {
                        return;
                    }
                    q = self.task_ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            match task {
                Task::Run(job) => job(),
                Task::KillWorker => panic!("worker pool chaos hook: injected worker panic"),
                Task::StallWorker(d) => std::thread::sleep(d),
            }
        }
    }
}

/// Per-`scoped_map` synchronization: chunk result slots, a completion
/// latch, and the first caught panic payload.
struct ScopeState<'f, T, F> {
    f: &'f F,
    slots: Vec<Mutex<Option<Vec<T>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<T, F> ScopeState<'_, T, F>
where
    F: Fn(usize) -> T + Sync,
{
    /// Runs chunk `w` (`start..end`) and resolves its slot — the body every
    /// execution venue (worker, helping caller) shares.
    fn run_chunk(&self, w: usize, start: usize, end: usize) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            (start..end).map(self.f).collect::<Vec<T>>()
        }));
        match result {
            Ok(values) => *lock(&self.slots[w]) = Some(values),
            Err(payload) => {
                let mut p = lock(&self.panic);
                if p.is_none() {
                    *p = Some(payload);
                }
            }
        }
        let mut rem = lock(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }
}

/// A fixed-size persistent worker pool; see the [module docs](self).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
    /// Workers replaced after dying (the chaos-hook path) — observable so
    /// tests can assert replacement actually happened.
    replaced: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `size.max(1)` persistent workers.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutting_down: false,
            }),
            task_ready: Condvar::new(),
        });
        let workers = (0..size).map(|i| Self::spawn_worker(&shared, i)).collect();
        Self {
            shared,
            workers: Mutex::new(workers),
            size,
            replaced: AtomicUsize::new(0),
        }
    }

    fn spawn_worker(shared: &Arc<Shared>, index: usize) -> JoinHandle<()> {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("hdc-pool-{index}"))
            .spawn(move || shared.worker_loop())
            .expect("spawn pool worker thread")
    }

    /// The fixed worker count the pool was built with.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Worker threads currently alive (equals [`WorkerPool::size`] unless a
    /// worker just died and has not been replaced yet).
    pub fn live_workers(&self) -> usize {
        lock(&self.workers)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// How many dead workers have been detected and replaced so far.
    pub fn workers_replaced(&self) -> usize {
        self.replaced.load(Ordering::Relaxed)
    }

    /// Tasks currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).tasks.len()
    }

    fn is_shutting_down(&self) -> bool {
        lock(&self.shared.queue).shutting_down
    }

    /// Replaces any worker whose thread has died (a panic that escaped the
    /// per-task catch) and returns how many were replaced. Called before
    /// each fan-out and periodically while a caller waits — so the pool
    /// self-heals lazily — and by the serving watchdog, which repairs
    /// *proactively* between fan-outs so a corpse never delays a flush.
    pub fn repair(&self) -> usize {
        let mut replaced_now = 0;
        let mut workers = lock(&self.workers);
        for i in 0..workers.len() {
            if workers[i].is_finished() && !self.is_shutting_down() {
                let dead = std::mem::replace(&mut workers[i], Self::spawn_worker(&self.shared, i));
                let _ = dead.join(); // reap; the panic payload is dropped
                self.replaced.fetch_add(1, Ordering::Relaxed);
                replaced_now += 1;
            }
        }
        replaced_now
    }

    /// The historical internal name for [`WorkerPool::repair`]'s lazy
    /// call sites.
    fn ensure_workers(&self) {
        self.repair();
    }

    /// Test-only chaos hook: enqueues a task that panics *outside* the
    /// per-task catch, killing one worker thread. The next fan-out detects
    /// the corpse and replaces it ([`WorkerPool::repair`]) — the seam the
    /// panic-isolation integration test drives.
    pub fn inject_worker_panic(&self) {
        let mut q = lock(&self.shared.queue);
        q.tasks.push_back(Task::KillWorker);
        drop(q);
        self.shared.task_ready.notify_one();
    }

    /// Test-only chaos hook: enqueues a task that puts one worker to sleep
    /// for `hold` — a *stalled* (not dead) worker, which `repair` cannot
    /// fix. Fan-outs still complete because waiting callers help-execute
    /// the stalled worker's remaining queue; the serving watchdog's
    /// flush-stall detector is what notices the slowdown.
    pub fn inject_worker_stall(&self, hold: Duration) {
        let mut q = lock(&self.shared.queue);
        q.tasks.push_back(Task::StallWorker(hold));
        drop(q);
        self.shared.task_ready.notify_one();
    }

    /// Applies `f` to every index in `0..count`, split into
    /// [`crate::parallel::chunk_bounds`] chunks executed on the pool's
    /// persistent workers. Results are returned in index order and are
    /// bit-identical to [`parallel_map_indices_scoped`] with the same
    /// `threads` argument.
    ///
    /// Falls back to the scoped/serial path when parallelism cannot help or
    /// would deadlock: `threads <= 1`, trivial ranges, calls from inside a
    /// pool worker, or a pool that is shutting down.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from `f` on the calling thread (workers
    /// survive).
    pub fn scoped_map<T, F>(&self, count: usize, threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if threads <= 1 || count <= 1 || in_pool_worker() || self.is_shutting_down() {
            return parallel_map_indices_scoped(count, threads, f);
        }
        self.ensure_workers();

        let workers = threads.min(count);
        let scope = ScopeState {
            f: &f,
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(workers),
            done: Condvar::new(),
            panic: Mutex::new(None),
        };

        // Type-erase the scope reference so chunk tasks satisfy the queue's
        // `'static` bound. SAFETY: this function does not return until the
        // completion latch reaches zero, and every enqueued task decrements
        // the latch exactly once (even when `f` panics — the catch is
        // inside `run_chunk`), so no task can observe `scope` after it is
        // dropped. The pointer is only dereferenced back to the exact
        // `ScopeState<T, F>` it was cast from.
        let scope_addr = &scope as *const ScopeState<'_, T, F> as usize;
        {
            let mut q = lock(&self.shared.queue);
            for w in 0..workers {
                let (start, end) = chunk_bounds(count, workers, w);
                q.tasks.push_back(Task::Run(Box::new(move || {
                    let scope = unsafe { &*(scope_addr as *const ScopeState<'_, T, F>) };
                    scope.run_chunk(w, start, end);
                })));
            }
        }
        self.shared.task_ready.notify_all();

        // Wait for the latch; while waiting, help execute queued tasks so
        // the map completes even if every worker is busy or dead, and
        // periodically replace dead workers (self-healing mid-scope).
        loop {
            if let Some(task) = self.try_pop_run_task() {
                // Helping executes arbitrary queued chunks; flag the thread
                // so their nested fan-outs fall back like a worker's would.
                let was = IN_POOL_WORKER.with(|flag| flag.replace(true));
                task();
                IN_POOL_WORKER.with(|flag| flag.set(was));
                continue;
            }
            let rem = lock(&scope.remaining);
            if *rem == 0 {
                break;
            }
            let (rem, _timeout) = scope
                .done
                .wait_timeout(rem, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
            let finished = *rem == 0;
            drop(rem);
            if finished {
                break;
            }
            self.ensure_workers();
        }

        if let Some(payload) = lock(&scope.panic).take() {
            resume_unwind(payload);
        }
        let mut out = Vec::with_capacity(count);
        for slot in &scope.slots {
            out.extend(
                lock(slot)
                    .take()
                    .expect("completed scope chunk left its result slot empty"),
            );
        }
        out
    }

    /// Pops one runnable task if the queue head is runnable (the caller
    /// never executes [`Task::KillWorker`] or [`Task::StallWorker`] — that
    /// chaos is reserved for worker threads).
    fn try_pop_run_task(&self) -> Option<Box<dyn FnOnce() + Send + 'static>> {
        let mut q = lock(&self.shared.queue);
        match q.tasks.front() {
            Some(Task::Run(_)) => match q.tasks.pop_front() {
                Some(Task::Run(job)) => Some(job),
                _ => unreachable!("queue head changed under the lock"),
            },
            _ => None,
        }
    }

    /// Graceful shutdown: stops accepting the pool as a fan-out venue,
    /// lets every worker drain the remaining queue, and joins them. Safe to
    /// call more than once; fan-outs issued after shutdown fall back to
    /// scoped threads.
    pub fn shutdown(&self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutting_down = true;
        }
        self.shared.task_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool every [`crate::parallel::parallel_map_indices`]
/// fan-out runs on, sized once from
/// [`crate::parallel::default_threads`] (`HDC_THREADS` / programmatic
/// override) at first use and kept alive for the life of the process.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(|| WorkerPool::new(crate::parallel::default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_map_matches_serial_and_preserves_order() {
        let pool = WorkerPool::new(4);
        for (count, threads) in [(0, 4), (1, 4), (7, 2), (100, 4), (3, 16), (64, 64)] {
            let serial: Vec<usize> = (0..count).map(|i| i * 3 + 1).collect();
            assert_eq!(
                pool.scoped_map(count, threads, |i| i * 3 + 1),
                serial,
                "count={count} threads={threads}"
            );
        }
        pool.shutdown();
    }

    #[test]
    fn panic_in_mapped_closure_propagates_but_workers_survive() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_map(8, 2, |i| {
                if i == 5 {
                    panic!("boom at 5");
                }
                i
            })
        }));
        assert!(caught.is_err(), "closure panic must reach the caller");
        // The pool still works afterwards — no worker died for a caught panic.
        assert_eq!(pool.scoped_map(6, 2, |i| i), (0..6).collect::<Vec<_>>());
        assert_eq!(pool.workers_replaced(), 0);
        pool.shutdown();
    }

    #[test]
    fn dead_worker_is_detected_and_replaced() {
        let pool = WorkerPool::new(2);
        pool.inject_worker_panic();
        // Wait for the victim to actually die before asking for work.
        for _ in 0..200 {
            if pool.live_workers() < 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            pool.scoped_map(32, 2, |i| i * i),
            (0..32).map(|i| i * i).collect::<Vec<_>>(),
            "requests after a worker death must still succeed"
        );
        assert_eq!(pool.workers_replaced(), 1);
        assert_eq!(pool.live_workers(), 2, "the corpse was replaced");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_is_idempotent() {
        let pool = Arc::new(WorkerPool::new(1));
        let total: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                let part: usize = pool.scoped_map(50, 2, |i| i).into_iter().sum();
                total.fetch_add(part, Ordering::Relaxed);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        pool.shutdown();
        pool.shutdown(); // idempotent
        assert_eq!(total.load(Ordering::Relaxed), 4 * (49 * 50) / 2);
        // Post-shutdown fan-outs still answer (scoped fallback).
        assert_eq!(pool.scoped_map(5, 4, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn nested_fanout_from_worker_falls_back_instead_of_deadlocking() {
        let pool = WorkerPool::new(1); // one worker: queueing nested work would deadlock
        let out = pool.scoped_map(4, 2, |i| {
            // Nested fan-out lands on the global pool via parallel_map_indices
            // in real code; here exercise the same guard directly.
            let inner: Vec<usize> = if in_pool_worker() {
                parallel_map_indices_scoped(3, 2, |j| i * 10 + j)
            } else {
                (0..3).map(|j| i * 10 + j).collect()
            };
            inner.into_iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
        pool.shutdown();
    }

    #[test]
    fn repair_replaces_corpses_proactively_and_reports_count() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.repair(), 0, "healthy pool: nothing to repair");
        pool.inject_worker_panic();
        for _ in 0..500 {
            if pool.live_workers() < 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.repair(), 1, "one corpse repaired");
        assert_eq!(pool.live_workers(), 2);
        assert_eq!(pool.workers_replaced(), 1);
        pool.shutdown();
    }

    #[test]
    fn stalled_worker_does_not_block_fanouts() {
        let pool = WorkerPool::new(2);
        pool.inject_worker_stall(Duration::from_millis(150));
        // Give a worker a moment to swallow the stall task.
        std::thread::sleep(Duration::from_millis(10));
        // Fan-outs complete while one worker is held hostage (the caller
        // helps drain), and the stalled worker is alive, so repair is a
        // no-op.
        assert_eq!(
            pool.scoped_map(16, 2, |i| i + 1),
            (1..=16).collect::<Vec<_>>()
        );
        assert_eq!(pool.repair(), 0, "a stalled worker is not a corpse");
        pool.shutdown();
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let g = global();
        assert!(g.size() >= 1);
        assert_eq!(g.scoped_map(10, 2, |i| i), (0..10).collect::<Vec<_>>());
    }
}
