//! BoostHD — boosting in hyperdimensional computing (the paper's primary
//! contribution), together with the HDC classifiers it builds on.
//!
//! The crate provides three classifiers over the [`hdc`] substrate:
//!
//! * [`CentroidHd`] — the classic single-pass HDC learner: bundle every
//!   encoded training sample into its class hypervector;
//! * [`OnlineHd`] — the OnlineHD classifier (Hernández-Cano et al., DATE'21)
//!   the paper uses as its strong/weak learner: an initial bundling pass
//!   followed by similarity-weighted iterative refinement;
//! * [`BoostHd`] — the paper's contribution: the `D`-dimensional hyperspace
//!   is partitioned into `n` disjoint sub-spaces of `D/n` dimensions, each
//!   owned by a weak OnlineHD learner, and the learners are trained
//!   sequentially under AdaBoost/SAMME sample re-weighting. Inference is a
//!   learner-weighted vote and parallelizes across queries.
//!
//! Every trained model can additionally be **frozen for deployment** on
//! a two-rung quantization ladder: `quantize_i8()` ([`quantized_i8`]
//! module) stores one scaled signed byte per dimension and scores through
//! the widening integer dot kernel (~4× smaller, cosine-faithful), and
//! `quantize()` ([`quantized`] module) sign-binarizes class hypervectors
//! into bitpacked `u64` words ([`hdc::backend::BitpackedSign`]) scored
//! via XOR + popcount — 32× smaller and several times faster than the
//! f32 cosine path at the paper's `D = 4000`.
//!
//! All models implement the [`Classifier`] trait (shared with the
//! `baselines` crate); f32 models implement [`faults::Perturbable`],
//! int8 models [`faults::PerturbableI8`], and bitpacked models
//! [`faults::PerturbablePacked`] for bit-flip fault injection.
//!
//! The recommended front door is the **unified facade** ([`pipeline`]):
//! describe any model (HDC or classical baseline) as a serializable
//! [`ModelSpec`], train it with [`Pipeline::fit`], ask for
//! confidence-gated predictions
//! ([`Pipeline::predict_with_confidence`]), and persist it through one
//! versioned envelope ([`Pipeline::save`]/[`Pipeline::load`]) that wraps
//! the per-model codecs in [`persist`].
//!
//! # Quickstart
//!
//! ```
//! use boosthd::{BoostHd, BoostHdConfig, Classifier};
//! use linalg::{Matrix, Rng64};
//!
//! // Toy two-class problem: points around (0,0) vs points around (3,3).
//! let mut rng = Rng64::seed_from(5);
//! let mut rows = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..120 {
//!     let class = i % 2;
//!     let center = if class == 0 { 0.0 } else { 3.0 };
//!     rows.push(vec![center + 0.3 * rng.normal(), center + 0.3 * rng.normal()]);
//!     labels.push(class);
//! }
//! let x = Matrix::from_rows(&rows)?;
//!
//! let config = BoostHdConfig { dim_total: 512, n_learners: 8, ..BoostHdConfig::default() };
//! let model = BoostHd::fit(&config, &x, &labels)?;
//! let acc = model
//!     .predict_batch(&x)
//!     .iter()
//!     .zip(&labels)
//!     .filter(|(p, y)| p == y)
//!     .count() as f64 / labels.len() as f64;
//! assert!(acc > 0.95);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod boost;
pub mod centroid;
pub mod classifier;
pub mod error;
pub mod fleet;
pub mod online;
pub mod parallel;
pub mod persist;
pub mod pipeline;
pub mod pool;
pub mod quantized;
pub mod quantized_i8;
pub mod spec;
pub mod toml;

pub use boost::{BoostHd, BoostHdConfig, Voting};
pub use centroid::{CentroidHd, CentroidHdConfig};
pub use classifier::{argmax, Classifier};
pub use error::{BoostHdError, Result};
pub use fleet::{Fleet, FleetConfig, FleetModel, ModelStore, StoreEntry};
pub use online::{OnlineHd, OnlineHdConfig};
pub use pipeline::{Model, Pipeline, Prediction};
pub use quantized::{QuantizedBoostHd, QuantizedHd};
pub use quantized_i8::{QuantizedI8BoostHd, QuantizedI8Hd, QuantizedI8Query};
pub use spec::{BaselineKind, BaselineSpec, ModelSpec};
