//! Frozen bitpacked inference models — the `quantize()` step.
//!
//! Training stays in f32 (gradient-like OnlineHD updates need magnitude
//! information), but a *deployed* model only scores queries. Sign-binarizing
//! the trained class hypervectors and packing them into `u64` words
//! ([`hdc::backend::BitpackedSign`]) shrinks the stored model 32× and turns
//! every similarity into `⌈D/64⌉` XOR + popcount operations — the binary-HDC
//! execution model wearable accelerators implement in hardware.
//!
//! [`OnlineHd::quantize`], [`CentroidHd::quantize`] and
//! [`BoostHd::quantize`] freeze a trained f32 model into [`QuantizedHd`] /
//! [`QuantizedBoostHd`]. Queries are encoded with the unchanged f32
//! projection, sign-packed, and scored entirely in the packed domain, so
//! class *and* query quantization noise are both bounded by the sign
//! rounding — the packed arithmetic itself is exact (see
//! `hdc::ops::packed_similarity`).
//!
//! For fault-injection studies the packed models implement
//! [`faults::PerturbablePacked`]: bit flips land directly on the
//! stored `u64` words, a more faithful single-event-upset model for 1-bit
//! memories than f32 mantissa flips.
//!
//! # Quantization-aware refit
//!
//! Plain sign binarization is data-free but lossy when the per-learner
//! dimensionality is small (similarity noise grows like `1/√D_wl`). The
//! `quantize_with_refit` variants run a few straight-through refinement
//! epochs before freezing: queries are scored against the *binarized*
//! class vectors (exactly what deployment will do) while the OnlineHD
//! update accumulates in f32 shadow weights, whose signs re-binarize after
//! every touched update. On the wearable workloads this recovers most of
//! the sign-rounding loss at `D_wl = 400`.

use crate::boost::{BoostHd, Voting};
use crate::classifier::{argmax, argmax_rows, predict_batch_chunked, Classifier};
use crate::error::{BoostHdError, Result};
use crate::online::OnlineHd;
use crate::CentroidHd;
use faults::PerturbablePacked;
use hdc::backend::{PackedHv, PackedMatrix};
use hdc::encoder::{Encode, SinusoidEncoder};
use linalg::matrix::norm;
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Straight-through refinement of one class matrix: score queries against
/// the binarized classes (the deployment arithmetic), update f32 shadow
/// weights with the OnlineHD rule on misclassification, and re-binarize
/// the touched rows. Returns the final packed classes.
fn refit_packed_classes(
    z: &Matrix,
    y: &[usize],
    shadow: &mut Matrix,
    lr: f32,
    epochs: usize,
) -> PackedMatrix {
    let mut bits = PackedMatrix::from_dense_rows(shadow);
    // Scratch reused across every sample and epoch: the packed query words
    // and the per-class similarity buffer (kernel-backed popcount sweep).
    let mut query_words: Vec<u64> = Vec::new();
    let mut sims = vec![0.0f32; shadow.rows()];
    for _epoch in 0..epochs {
        for (r, &truth) in y.iter().enumerate() {
            let h = z.row(r);
            hdc::ops::pack_signs_into(h, &mut query_words);
            bits.similarities_into(&query_words, &mut sims);
            let pred = argmax(&sims);
            if pred == truth {
                continue;
            }
            let hn = norm(h);
            if hn == 0.0 {
                continue;
            }
            // The packed similarity lives on the cosine scale, so the
            // (1 − δ) error weighting carries over unchanged; the sample is
            // normalized like OnlineHd::update so one step nudges rather
            // than overwrites the shadow direction.
            hdc::ops::bundle_into(shadow.row_mut(truth), h, lr * (1.0 - sims[truth]) / hn);
            hdc::ops::bundle_into(shadow.row_mut(pred), h, -lr * (1.0 - sims[pred]) / hn);
            bits.set_row_signs(truth, shadow.row(truth));
            bits.set_row_signs(pred, shadow.row(pred));
        }
    }
    bits
}

/// Validates refit inputs against a trained model's shape (shared with the
/// int8 tier in [`crate::quantized_i8`]).
pub(crate) fn validate_refit_inputs(
    x: &Matrix,
    y: &[usize],
    input_len: usize,
    num_classes: usize,
) -> Result<()> {
    if x.rows() == 0 || x.rows() != y.len() {
        return Err(BoostHdError::DataMismatch {
            reason: format!("{} refit rows but {} labels", x.rows(), y.len()),
        });
    }
    if x.cols() != input_len {
        return Err(BoostHdError::DataMismatch {
            reason: format!(
                "refit samples have {} features but the encoder expects {input_len}",
                x.cols()
            ),
        });
    }
    if let Some(&bad) = y.iter().find(|&&yi| yi >= num_classes) {
        return Err(BoostHdError::DataMismatch {
            reason: format!("refit label {bad} outside the {num_classes} trained classes"),
        });
    }
    Ok(())
}

/// A frozen single-learner HDC classifier with bitpacked class
/// hypervectors (quantized [`OnlineHd`] or [`CentroidHd`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedHd {
    encoder: SinusoidEncoder,
    class_bits: PackedMatrix,
    num_classes: usize,
}

impl QuantizedHd {
    pub(crate) fn from_class_matrix(
        encoder: SinusoidEncoder,
        class_hvs: &Matrix,
        num_classes: usize,
    ) -> Self {
        Self {
            encoder,
            class_bits: PackedMatrix::from_dense_rows(class_hvs),
            num_classes,
        }
    }

    /// Reassembles a model from stored parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for inconsistent shapes.
    pub(crate) fn from_parts(
        encoder: SinusoidEncoder,
        class_bits: PackedMatrix,
        num_classes: usize,
    ) -> Result<Self> {
        if class_bits.rows() != num_classes {
            return Err(BoostHdError::DataMismatch {
                reason: "packed class count disagrees with header".into(),
            });
        }
        if class_bits.dim() != encoder.dim() {
            return Err(BoostHdError::DataMismatch {
                reason: "packed class width disagrees with encoder".into(),
            });
        }
        Ok(Self {
            encoder,
            class_bits,
            num_classes,
        })
    }

    /// Hyperspace dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.class_bits.dim()
    }

    /// The packed class hypervectors.
    pub fn class_bits(&self) -> &PackedMatrix {
        &self.class_bits
    }

    /// The (f32) query encoder.
    pub fn encoder(&self) -> &SinusoidEncoder {
        &self.encoder
    }

    /// Bytes of class-hypervector storage (the memory a 1-bit associative
    /// memory would hold; excludes the shared projection).
    pub fn class_storage_bytes(&self) -> usize {
        std::mem::size_of_val(self.class_bits.as_words())
    }

    /// Per-class popcount similarities for an already-packed query.
    pub fn scores_packed(&self, query: &PackedHv) -> Vec<f32> {
        self.class_bits.similarities(query)
    }

    /// Predicts every row of `x` using `threads` worker threads, each
    /// running the batched encode + popcount sweep on a contiguous chunk.
    /// Identical to [`Classifier::predict_batch`] for any thread count.
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        predict_batch_chunked(self, x, threads)
    }
}

impl Classifier for QuantizedHd {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        self.scores_packed(&self.encoder.encode_row_packed(x))
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        // Walk the batch in row chunks through a reused encode buffer: the
        // fused GEMM encodes each chunk, signs pack straight off the
        // buffer, and one batched popcount sweep over the flat class words
        // scores the whole chunk.
        let mut out = Matrix::zeros(x.rows(), self.num_classes);
        let mut zbuf = Matrix::zeros(0, 0);
        let mut start = 0;
        while start < x.rows() {
            let end = (start + crate::online::score_chunk()).min(x.rows());
            self.encoder
                .encode_batch_into(&x.slice_rows(start, end), &mut zbuf);
            let packed: Vec<PackedHv> = (0..zbuf.rows())
                .map(|r| PackedHv::from_signs(zbuf.row(r)))
                .collect();
            let queries = PackedMatrix::from_rows(&packed)
                .expect("chunk queries share the encoder dimension");
            let sims = self.class_bits.batch_similarities(&queries);
            for r in 0..sims.rows() {
                out.row_mut(start + r).copy_from_slice(sims.row(r));
            }
            start = end;
        }
        out
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.scores_batch(x))
    }
}

impl PerturbablePacked for QuantizedHd {
    fn packed_bit_count(&self) -> u64 {
        self.class_bits.bit_count()
    }

    fn flip_packed_bit(&mut self, index: u64) {
        flip_matrix_bit(&mut self.class_bits, index);
    }
}

impl OnlineHd {
    /// Freezes the trained model into a bitpacked inference model: class
    /// hypervectors sign-quantized into packed words, scoring via popcount.
    pub fn quantize(&self) -> QuantizedHd {
        QuantizedHd::from_class_matrix(
            self.encoder().clone(),
            self.class_hypervectors(),
            self.num_classes(),
        )
    }

    /// [`OnlineHd::quantize`] preceded by `epochs` of quantization-aware
    /// refinement on `(x, y)` (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for empty/inconsistent refit
    /// data or out-of-range labels.
    pub fn quantize_with_refit(
        &self,
        x: &Matrix,
        y: &[usize],
        epochs: usize,
    ) -> Result<QuantizedHd> {
        validate_refit_inputs(x, y, self.encoder().input_len(), self.num_classes())?;
        let z = self.encoder().encode_batch(x);
        let mut shadow = self.class_hypervectors().clone();
        let class_bits = refit_packed_classes(&z, y, &mut shadow, self.config().lr, epochs);
        QuantizedHd::from_parts(self.encoder().clone(), class_bits, self.num_classes())
    }
}

impl CentroidHd {
    /// Freezes the trained model into a bitpacked inference model; see
    /// [`OnlineHd::quantize`].
    pub fn quantize(&self) -> QuantizedHd {
        QuantizedHd::from_class_matrix(
            self.encoder().clone(),
            self.class_hypervectors(),
            self.num_classes(),
        )
    }
}

/// One frozen weak learner: packed class hypervectors plus its vote weight
/// and hyperspace segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct QuantizedWeakLearner {
    pub(crate) class_bits: PackedMatrix,
    pub(crate) alpha: f32,
    pub(crate) seg_start: usize,
    pub(crate) seg_end: usize,
    /// Present only for full-dimension (ablation-mode) ensembles.
    pub(crate) own_encoder: Option<SinusoidEncoder>,
}

/// A frozen BoostHD ensemble with bitpacked weak learners.
///
/// Inference encodes the query once at full `D` with the f32 projection,
/// sign-packs each weak learner's segment, and aggregates `α`-weighted
/// popcount votes — the batch popcount scoring path across weak learners.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedBoostHd {
    encoder: SinusoidEncoder,
    learners: Vec<QuantizedWeakLearner>,
    num_classes: usize,
    voting: Voting,
    dim_total: usize,
}

impl QuantizedBoostHd {
    pub(crate) fn from_model(model: &BoostHd) -> Self {
        let learners = (0..model.num_learners())
            .map(|i| {
                let (alpha, seg_start, seg_end, own_encoder) = model.learner_parts(i);
                QuantizedWeakLearner {
                    class_bits: PackedMatrix::from_dense_rows(model.learner_class_hypervectors(i)),
                    alpha,
                    seg_start,
                    seg_end,
                    own_encoder: own_encoder.cloned(),
                }
            })
            .collect();
        Self {
            encoder: model.encoder().clone(),
            learners,
            num_classes: model.num_classes(),
            voting: model.config().voting,
            dim_total: model.dim_total(),
        }
    }

    /// Reassembles an ensemble from stored parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for inconsistent segments or
    /// class shapes.
    pub(crate) fn from_parts(
        encoder: SinusoidEncoder,
        learners: Vec<QuantizedWeakLearner>,
        num_classes: usize,
        voting: Voting,
        dim_total: usize,
    ) -> Result<Self> {
        for l in &learners {
            if l.seg_start > l.seg_end || l.seg_end > dim_total {
                return Err(BoostHdError::DataMismatch {
                    reason: format!("segment {}..{} out of bounds", l.seg_start, l.seg_end),
                });
            }
            if l.class_bits.rows() != num_classes {
                return Err(BoostHdError::DataMismatch {
                    reason: "learner class count disagrees with header".into(),
                });
            }
            match &l.own_encoder {
                None if l.class_bits.dim() != l.seg_end - l.seg_start => {
                    return Err(BoostHdError::DataMismatch {
                        reason: "packed class width disagrees with segment".into(),
                    });
                }
                Some(enc) if l.class_bits.dim() != enc.dim() => {
                    return Err(BoostHdError::DataMismatch {
                        reason: "packed class width disagrees with learner encoder".into(),
                    });
                }
                _ => {}
            }
        }
        Ok(Self {
            encoder,
            learners,
            num_classes,
            voting,
            dim_total,
        })
    }

    /// Number of weak learners `N_L`.
    pub fn num_learners(&self) -> usize {
        self.learners.len()
    }

    /// Total hyperspace dimensionality `D_total`.
    pub fn dim_total(&self) -> usize {
        self.dim_total
    }

    /// Vote aggregation rule inherited from the f32 ensemble.
    pub fn voting(&self) -> Voting {
        self.voting
    }

    /// The shared full-`D` (f32) query encoder.
    pub fn encoder(&self) -> &SinusoidEncoder {
        &self.encoder
    }

    /// Vote weights `α_i`, in training order.
    pub fn alphas(&self) -> Vec<f32> {
        self.learners.iter().map(|l| l.alpha).collect()
    }

    /// Bytes of packed class-hypervector storage across all weak learners.
    pub fn class_storage_bytes(&self) -> usize {
        self.learners
            .iter()
            .map(|l| std::mem::size_of_val(l.class_bits.as_words()))
            .sum()
    }

    pub(crate) fn learner_parts(
        &self,
        i: usize,
    ) -> (&PackedMatrix, f32, usize, usize, Option<&SinusoidEncoder>) {
        let l = &self.learners[i];
        (
            &l.class_bits,
            l.alpha,
            l.seg_start,
            l.seg_end,
            l.own_encoder.as_ref(),
        )
    }

    /// `α`-weighted popcount votes for a query whose full-`D` dense
    /// encoding is `full_h` (`x` is the raw feature row, needed only by
    /// full-dimension ablation learners).
    fn votes_for_encoded(&self, full_h: &[f32], x: &[f32]) -> Vec<f32> {
        let mut votes = vec![0.0f32; self.num_classes];
        for learner in &self.learners {
            let sims = match &learner.own_encoder {
                None => {
                    let q = PackedHv::from_signs(&full_h[learner.seg_start..learner.seg_end]);
                    learner.class_bits.similarities(&q)
                }
                Some(enc) => learner.class_bits.similarities(&enc.encode_row_packed(x)),
            };
            match self.voting {
                Voting::Hard => votes[argmax(&sims)] += learner.alpha,
                Voting::Soft => {
                    for (v, s) in votes.iter_mut().zip(sims.iter()) {
                        *v += learner.alpha * s;
                    }
                }
            }
        }
        votes
    }

    /// Predicts every row of `x` using `threads` worker threads, each
    /// running the batched encode + per-learner popcount sweeps on a
    /// contiguous chunk (queries are independent; popcount scoring
    /// parallelizes embarrassingly). Identical to
    /// [`Classifier::predict_batch`] for any thread count.
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        predict_batch_chunked(self, x, threads)
    }
}

impl Classifier for QuantizedBoostHd {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let needs_full = self.learners.iter().any(|l| l.own_encoder.is_none());
        let full_h = if needs_full {
            self.encoder.encode_row(x)
        } else {
            Vec::new()
        };
        self.votes_for_encoded(&full_h, x)
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        // Walk the batch in row chunks through a reused encode buffer; each
        // chunk is encoded once at full `D`, then every weak learner packs
        // its segment and scores the chunk with one batched popcount sweep
        // over its packed class memory — learners visited in training order
        // so the `α`-weighted vote sums accumulate exactly like the row
        // path.
        let mut votes = Matrix::zeros(x.rows(), self.num_classes);
        let needs_full = self.learners.iter().any(|l| l.own_encoder.is_none());
        let mut zbuf = Matrix::zeros(0, 0);
        let mut start = 0;
        while start < x.rows() {
            let end = (start + crate::online::score_chunk()).min(x.rows());
            let xc = x.slice_rows(start, end);
            if needs_full {
                self.encoder.encode_batch_into(&xc, &mut zbuf);
            }
            for learner in &self.learners {
                let queries: Vec<PackedHv> = match &learner.own_encoder {
                    None => (0..zbuf.rows())
                        .map(|r| {
                            PackedHv::from_signs(&zbuf.row(r)[learner.seg_start..learner.seg_end])
                        })
                        .collect(),
                    Some(enc) => enc.encode_batch_packed(&xc),
                };
                let queries = PackedMatrix::from_rows(&queries)
                    .expect("chunk queries share the segment width");
                let sims = learner.class_bits.batch_similarities(&queries);
                for r in 0..sims.rows() {
                    let sims_row = sims.row(r);
                    let vote_row = votes.row_mut(start + r);
                    match self.voting {
                        Voting::Hard => vote_row[argmax(sims_row)] += learner.alpha,
                        Voting::Soft => {
                            for (v, s) in vote_row.iter_mut().zip(sims_row.iter()) {
                                *v += learner.alpha * s;
                            }
                        }
                    }
                }
            }
            start = end;
        }
        votes
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.scores_batch(x))
    }
}

impl PerturbablePacked for QuantizedBoostHd {
    fn packed_bit_count(&self) -> u64 {
        self.learners.iter().map(|l| l.class_bits.bit_count()).sum()
    }

    fn flip_packed_bit(&mut self, mut index: u64) {
        for learner in &mut self.learners {
            let bits = learner.class_bits.bit_count();
            if index < bits {
                flip_matrix_bit(&mut learner.class_bits, index);
                return;
            }
            index -= bits;
        }
        panic!("packed bit index out of range");
    }
}

impl BoostHd {
    /// Freezes the trained ensemble into a bitpacked inference model: every
    /// weak learner's class hypervectors sign-quantized into packed words,
    /// votes scored via popcount. See the [module docs](self).
    pub fn quantize(&self) -> QuantizedBoostHd {
        QuantizedBoostHd::from_model(self)
    }

    /// [`BoostHd::quantize`] preceded by `epochs` of per-learner
    /// quantization-aware refinement on `(x, y)`.
    ///
    /// Each weak learner refines against its own segment of the encoded
    /// refit batch, scoring exactly the way the deployed packed model will
    /// (popcount against binarized classes) while updates accumulate in
    /// f32 shadow weights. Recommended before shipping: at the paper's
    /// `D_wl = 400` it recovers most of the sign-rounding loss. A handful
    /// of epochs suffices; long refits start fitting quantization noise.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for empty/inconsistent refit
    /// data or out-of-range labels.
    pub fn quantize_with_refit(
        &self,
        x: &Matrix,
        y: &[usize],
        epochs: usize,
    ) -> Result<QuantizedBoostHd> {
        validate_refit_inputs(x, y, self.encoder().input_len(), self.num_classes())?;
        let z = self.encoder().encode_batch(x);
        let learners = (0..self.num_learners())
            .map(|i| {
                let (alpha, seg_start, seg_end, own_encoder) = self.learner_parts(i);
                let zi = match own_encoder {
                    None => z.slice_columns(seg_start, seg_end),
                    Some(enc) => enc.encode_batch(x),
                };
                let mut shadow = self.learner_class_hypervectors(i).clone();
                let class_bits =
                    refit_packed_classes(&zi, y, &mut shadow, self.config().lr, epochs);
                QuantizedWeakLearner {
                    class_bits,
                    alpha,
                    seg_start,
                    seg_end,
                    own_encoder: own_encoder.cloned(),
                }
            })
            .collect();
        QuantizedBoostHd::from_parts(
            self.encoder().clone(),
            learners,
            self.num_classes(),
            self.config().voting,
            self.dim_total(),
        )
    }
}

/// Flips valid (non-padding) bit `index` of a packed matrix, where bits
/// are numbered row-major over the `rows × dim` grid.
fn flip_matrix_bit(m: &mut PackedMatrix, index: u64) {
    let dim = m.dim() as u64;
    let row = (index / dim) as usize;
    let offset = (index % dim) as usize;
    let words_per_row = m.as_words().len() / m.rows();
    let word = row * words_per_row + offset / 64;
    m.as_words_mut()[word] ^= 1u64 << (offset % 64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boost::BoostHdConfig;
    use crate::online::OnlineHdConfig;
    use faults::flip_sign_bits;
    use linalg::Rng64;

    fn blobs(n: usize, seed: u64, sep: f32, noise: f32) -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(seed);
        let centers = [(-1.0f32, -1.0f32), (1.0, 1.0), (-1.0, 1.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = centers[class];
            rows.push(vec![
                cx * sep + noise * rng.normal(),
                cy * sep + noise * rng.normal(),
                noise * rng.normal(),
            ]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn accuracy(model: &impl Classifier, x: &Matrix, y: &[usize]) -> f64 {
        model
            .predict_batch(x)
            .iter()
            .zip(y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64
    }

    #[test]
    fn quantized_onlinehd_tracks_f32_accuracy() {
        let (x, y) = blobs(240, 1, 1.0, 0.35);
        let config = OnlineHdConfig {
            dim: 2048,
            epochs: 10,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        let full = accuracy(&model, &x, &y);
        let quant = accuracy(&quantized, &x, &y);
        assert!(quant > full - 0.05, "quantized {quant} vs f32 {full}");
        assert_eq!(quantized.num_classes(), 3);
        assert_eq!(quantized.dim(), 2048);
    }

    #[test]
    fn quantized_boosthd_tracks_f32_accuracy() {
        let (x, y) = blobs(240, 2, 1.0, 0.35);
        let config = BoostHdConfig {
            dim_total: 2048,
            n_learners: 8,
            epochs: 8,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        let full = accuracy(&model, &x, &y);
        let quant = accuracy(&quantized, &x, &y);
        assert!(quant > full - 0.05, "quantized {quant} vs f32 {full}");
        assert_eq!(quantized.num_learners(), 8);
        assert_eq!(quantized.alphas(), model.alphas());
    }

    #[test]
    fn packed_batch_matches_rowwise() {
        let (x, y) = blobs(90, 3, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 640,
            n_learners: 8,
            epochs: 6,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize();
        let batch = quantized.predict_batch(&x);
        let rowwise: Vec<usize> = (0..x.rows()).map(|r| quantized.predict(x.row(r))).collect();
        assert_eq!(batch, rowwise);
        assert_eq!(batch, quantized.predict_batch_parallel(&x, 4));
    }

    #[test]
    fn quantized_centroid_works() {
        let (x, y) = blobs(120, 4, 1.2, 0.3);
        let config = crate::CentroidHdConfig {
            dim: 1024,
            ..Default::default()
        };
        let model = CentroidHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        assert!(accuracy(&quantized, &x, &y) > 0.9);
    }

    #[test]
    fn quantized_full_dimension_mode_works() {
        use crate::boost::EnsembleMode;
        let (x, y) = blobs(120, 5, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 256,
            n_learners: 4,
            epochs: 5,
            mode: EnsembleMode::FullDimension,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        assert!(accuracy(&quantized, &x, &y) > 0.85);
        assert_eq!(
            quantized.predict_batch(&x),
            quantized.predict_batch_parallel(&x, 3)
        );
    }

    #[test]
    fn storage_shrinks_32x_versus_f32_classes() {
        let (x, y) = blobs(90, 6, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 640,
            n_learners: 5,
            epochs: 4,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let quantized = model.quantize();
        let f32_bytes: usize = (0..model.num_learners())
            .map(|i| model.learner_class_hypervectors(i).as_slice().len() * 4)
            .sum();
        // 640/5 = 128 dims per learner → no padding → exactly 32×.
        assert_eq!(f32_bytes, 32 * quantized.class_storage_bytes());
    }

    #[test]
    fn refit_improves_or_matches_data_free_quantization() {
        // Dimension-starved learners (D_wl = 40) lose real accuracy to sign
        // rounding; straight-through refit must claw some back on the
        // training distribution.
        let (x, y) = blobs(300, 10, 0.7, 0.55);
        let config = BoostHdConfig {
            dim_total: 320,
            n_learners: 8,
            epochs: 8,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let plain = accuracy(&model.quantize(), &x, &y);
        let refit = accuracy(&model.quantize_with_refit(&x, &y, 5).unwrap(), &x, &y);
        assert!(
            refit >= plain,
            "refit {refit} should not trail data-free {plain}"
        );
    }

    #[test]
    fn refit_rejects_bad_inputs() {
        let (x, y) = blobs(60, 11, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 320,
            n_learners: 4,
            epochs: 4,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let empty = Matrix::zeros(0, 3);
        assert!(model.quantize_with_refit(&empty, &[], 3).is_err());
        assert!(model.quantize_with_refit(&x, &y[..10], 3).is_err());
        let bad_labels = vec![99usize; y.len()];
        assert!(model.quantize_with_refit(&x, &bad_labels, 3).is_err());
        let narrow = Matrix::zeros(60, 1);
        assert!(model.quantize_with_refit(&narrow, &y, 3).is_err());
        // Zero refit epochs degenerates to data-free quantization.
        let zero = model.quantize_with_refit(&x, &y, 0).unwrap();
        assert_eq!(zero.predict_batch(&x), model.quantize().predict_batch(&x));
    }

    #[test]
    fn onlinehd_refit_quantization_works() {
        let (x, y) = blobs(200, 12, 0.8, 0.5);
        let config = OnlineHdConfig {
            dim: 256,
            epochs: 8,
            ..Default::default()
        };
        let model = OnlineHd::fit(&config, &x, &y).unwrap();
        let plain = accuracy(&model.quantize(), &x, &y);
        let refit = accuracy(&model.quantize_with_refit(&x, &y, 5).unwrap(), &x, &y);
        assert!(refit >= plain - 1e-9, "refit {refit} vs plain {plain}");
    }

    #[test]
    fn from_parts_rejects_own_encoder_width_mismatch() {
        use crate::boost::EnsembleMode;
        let (x, y) = blobs(90, 15, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 128,
            n_learners: 2,
            epochs: 3,
            mode: EnsembleMode::FullDimension,
            ..Default::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        let good = model.quantize();
        // Rebuild the learners but give one an encoder of the wrong width:
        // loading such a blob must Err instead of panicking at inference.
        let mut rng = linalg::Rng64::seed_from(0);
        let wrong_encoder = SinusoidEncoder::new(64, x.cols(), &mut rng);
        let learners: Vec<QuantizedWeakLearner> = (0..good.num_learners())
            .map(|i| {
                let (class_bits, alpha, seg_start, seg_end, _) = good.learner_parts(i);
                QuantizedWeakLearner {
                    class_bits: class_bits.clone(),
                    alpha,
                    seg_start,
                    seg_end,
                    own_encoder: Some(wrong_encoder.clone()),
                }
            })
            .collect();
        assert!(QuantizedBoostHd::from_parts(
            good.encoder().clone(),
            learners,
            good.num_classes(),
            good.voting(),
            good.dim_total(),
        )
        .is_err());
    }

    #[test]
    fn packed_bitflips_land_on_stored_words() {
        let (x, y) = blobs(120, 7, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 640,
            n_learners: 8,
            epochs: 6,
            ..Default::default()
        };
        let mut quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize();
        let before = quantized.clone();
        let mut rng = Rng64::seed_from(0);
        let report = flip_sign_bits(&mut quantized, 0.02, &mut rng);
        assert!(report.flipped > 0);
        // Flips must change stored words but keep every padding bit clear
        // (from_parts round-trip would reject set padding).
        let mut changed = false;
        for i in 0..quantized.num_learners() {
            let (bits, ..) = quantized.learner_parts(i);
            let (bits_before, ..) = before.learner_parts(i);
            if bits != bits_before {
                changed = true;
            }
            for r in 0..bits.rows() {
                assert!(
                    hdc::backend::PackedHv::from_words(bits.row_words(r).to_vec(), bits.dim())
                        .is_ok()
                );
            }
        }
        assert!(changed);
    }

    #[test]
    fn quantized_ensemble_absorbs_moderate_sign_flips() {
        let (x, y) = blobs(240, 8, 1.0, 0.35);
        let config = BoostHdConfig {
            dim_total: 2048,
            n_learners: 8,
            epochs: 8,
            ..Default::default()
        };
        let quantized = BoostHd::fit(&config, &x, &y).unwrap().quantize();
        let clean = accuracy(&quantized, &x, &y);
        let mut corrupted = quantized.clone();
        let mut rng = Rng64::seed_from(3);
        flip_sign_bits(&mut corrupted, 1e-3, &mut rng);
        let faulty = accuracy(&corrupted, &x, &y);
        assert!(
            faulty > clean - 0.05,
            "0.1% sign flips should be absorbed: {clean} -> {faulty}"
        );
    }
}
