//! Error types for the `boosthd` crate.

use std::error::Error as StdError;
use std::fmt;

/// Convenient alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BoostHdError>;

/// Errors reported when configuring, training, or querying the classifiers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoostHdError {
    /// A configuration parameter was invalid (zero dimensions, zero
    /// learners, non-positive learning rate, ...).
    InvalidConfig {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
    /// Features/labels/weights disagreed on the number of samples, or the
    /// training set was empty.
    DataMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An error bubbled up from the HDC substrate.
    Hdc(hdc::HdcError),
}

impl fmt::Display for BoostHdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoostHdError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            BoostHdError::DataMismatch { reason } => write!(f, "data mismatch: {reason}"),
            BoostHdError::Hdc(e) => write!(f, "hdc substrate error: {e}"),
        }
    }
}

impl StdError for BoostHdError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            BoostHdError::Hdc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdc::HdcError> for BoostHdError {
    fn from(e: hdc::HdcError) -> Self {
        BoostHdError::Hdc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_reason() {
        let e = BoostHdError::InvalidConfig {
            reason: "zero learners".into(),
        };
        assert!(e.to_string().contains("zero learners"));
    }

    #[test]
    fn hdc_error_converts_and_sources() {
        use std::error::Error as _;
        let inner = hdc::HdcError::InvalidConfig { reason: "x".into() };
        let e = BoostHdError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoostHdError>();
    }
}
