//! [`ModelSpec`]: the declarative, serializable description of every model
//! in the evaluation.
//!
//! The paper (and the broader HDC-classification literature: HDTorch, the
//! Ge & Parhi review) treats model choice as a swept design-space
//! parameter; this module makes that literal. One `ModelSpec` value names
//! a model family plus its full hyperparameter set — HDC encoder
//! dimensionality, training knobs, backend (dense f32 vs bitpacked sign),
//! and for the classical baselines the handful of knobs the Table I zoo
//! varies. Specs round-trip through the TOML subset in [`crate::toml`]
//! (`[model]` tables, the `hdrun` CLI's file format) and through the
//! persistence envelope ([`crate::pipeline`]), so a trained artifact
//! always records exactly how to rebuild itself.
//!
//! Construct a spec directly from the existing config structs:
//!
//! ```
//! use boosthd::{BoostHdConfig, ModelSpec};
//!
//! let spec = ModelSpec::BoostHd(BoostHdConfig { dim_total: 2000, ..Default::default() });
//! let text = spec.to_toml();
//! assert_eq!(ModelSpec::from_toml_str(&text)?, spec);
//! # Ok::<(), boosthd::BoostHdError>(())
//! ```

use crate::boost::{BoostHdConfig, EnsembleMode, SampleMode, Voting};
use crate::centroid::CentroidHdConfig;
use crate::error::{BoostHdError, Result};
use crate::online::OnlineHdConfig;
use crate::toml::{TomlDoc, TomlTable, TomlWriter};
use serde::{Deserialize, Serialize};

fn spec_err(reason: impl Into<String>) -> BoostHdError {
    BoostHdError::InvalidConfig {
        reason: reason.into(),
    }
}

/// Which classical baseline a [`BaselineSpec`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// AdaBoost over shallow trees.
    AdaBoost,
    /// Random forest.
    RandomForest,
    /// Gradient-boosted trees (XGBoost-style).
    Gbt,
    /// Linear SVM (Pegasos, one-vs-rest).
    Svm,
    /// The dropout MLP the paper calls "DNN".
    Mlp,
}

impl BaselineKind {
    /// Stable spec-file tag.
    pub fn tag(self) -> &'static str {
        match self {
            BaselineKind::AdaBoost => "adaboost",
            BaselineKind::RandomForest => "random_forest",
            BaselineKind::Gbt => "gbt",
            BaselineKind::Svm => "svm",
            BaselineKind::Mlp => "mlp",
        }
    }

    fn from_tag(tag: &str) -> Result<Self> {
        Ok(match tag {
            "adaboost" => BaselineKind::AdaBoost,
            "random_forest" => BaselineKind::RandomForest,
            "gbt" | "xgboost" => BaselineKind::Gbt,
            "svm" => BaselineKind::Svm,
            "mlp" | "dnn" => BaselineKind::Mlp,
            other => return Err(spec_err(format!("unknown baseline kind `{other}`"))),
        })
    }
}

/// Declarative description of one classical baseline: the kind plus the
/// knobs the evaluation varies. `None` fields take the baseline crate's
/// defaults (the paper's hyperparameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineSpec {
    /// Which baseline family.
    pub kind: BaselineKind,
    /// Seed for bootstraps / initialization / shuffling.
    pub seed: u64,
    /// Estimator count override (trees / boosting rounds), where the
    /// family has one.
    pub n_estimators: Option<usize>,
    /// Epoch override (SVM passes, MLP epochs), where the family has one.
    pub epochs: Option<usize>,
    /// Learning-rate override, where the family has one.
    pub lr: Option<f64>,
    /// Hidden-layer widths override (MLP only).
    pub hidden: Option<Vec<usize>>,
}

impl BaselineSpec {
    /// A baseline spec of `kind` with every knob at the paper default.
    pub fn new(kind: BaselineKind, seed: u64) -> Self {
        Self {
            kind,
            seed,
            n_estimators: None,
            epochs: None,
            lr: None,
            hidden: None,
        }
    }
}

/// The unified, declarative model description: every model family of the
/// evaluation with its nested hyperparameters. See the [module
/// docs](self) and [`crate::pipeline::Pipeline::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// OnlineHD with a dense-f32 backend.
    OnlineHd(OnlineHdConfig),
    /// Single-pass centroid bundling with a dense-f32 backend.
    CentroidHd(CentroidHdConfig),
    /// The paper's boosted partitioned ensemble, dense-f32 backend.
    BoostHd(BoostHdConfig),
    /// OnlineHD trained in f32 then frozen to the bitpacked sign backend
    /// (optionally with quantization-aware refit epochs).
    QuantizedOnlineHd {
        /// The f32 training configuration.
        base: OnlineHdConfig,
        /// Straight-through refinement epochs before freezing (0 = plain
        /// sign binarization).
        refit_epochs: usize,
    },
    /// BoostHD trained in f32 then frozen to the bitpacked sign backend.
    QuantizedBoostHd {
        /// The f32 training configuration.
        base: BoostHdConfig,
        /// Straight-through refinement epochs before freezing (0 = plain
        /// sign binarization).
        refit_epochs: usize,
    },
    /// OnlineHD trained in f32 then frozen to the int8 scaled-integer
    /// backend (the middle rung of the quantization ladder).
    QuantizedI8OnlineHd {
        /// The f32 training configuration.
        base: OnlineHdConfig,
        /// Straight-through refinement epochs before freezing (0 = plain
        /// data-free quantization).
        refit_epochs: usize,
    },
    /// BoostHD trained in f32 then frozen to the int8 scaled-integer
    /// backend.
    QuantizedI8BoostHd {
        /// The f32 training configuration.
        base: BoostHdConfig,
        /// Straight-through refinement epochs before freezing (0 = plain
        /// data-free quantization).
        refit_epochs: usize,
    },
    /// A classical baseline from the Table I zoo (constructed through the
    /// registered builder; see [`crate::pipeline::register_baseline_builder`]).
    Baseline(BaselineSpec),
}

impl ModelSpec {
    /// Stable spec-file tag of the model family (`kind = "..."`).
    pub fn kind_tag(&self) -> &'static str {
        match self {
            ModelSpec::OnlineHd(_) => "online_hd",
            ModelSpec::CentroidHd(_) => "centroid_hd",
            ModelSpec::BoostHd(_) => "boost_hd",
            ModelSpec::QuantizedOnlineHd { .. } => "quantized_online_hd",
            ModelSpec::QuantizedBoostHd { .. } => "quantized_boost_hd",
            ModelSpec::QuantizedI8OnlineHd { .. } => "quantized_i8_online_hd",
            ModelSpec::QuantizedI8BoostHd { .. } => "quantized_i8_boost_hd",
            ModelSpec::Baseline(b) => b.kind.tag(),
        }
    }

    /// Human-readable family name for reports.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelSpec::OnlineHd(_) => "OnlineHD",
            ModelSpec::CentroidHd(_) => "CentroidHD",
            ModelSpec::BoostHd(_) => "BoostHD",
            ModelSpec::QuantizedOnlineHd { .. } => "OnlineHD(bitpacked)",
            ModelSpec::QuantizedBoostHd { .. } => "BoostHD(bitpacked)",
            ModelSpec::QuantizedI8OnlineHd { .. } => "OnlineHD(int8)",
            ModelSpec::QuantizedI8BoostHd { .. } => "BoostHD(int8)",
            ModelSpec::Baseline(b) => match b.kind {
                BaselineKind::AdaBoost => "Adaboost",
                BaselineKind::RandomForest => "RF",
                BaselineKind::Gbt => "XGBoost",
                BaselineKind::Svm => "SVM",
                BaselineKind::Mlp => "DNN",
            },
        }
    }

    /// Re-seeds the spec in place (the repeated-run harness derives one
    /// spec per run from a base spec).
    pub fn set_seed(&mut self, seed: u64) {
        match self {
            ModelSpec::OnlineHd(c)
            | ModelSpec::QuantizedOnlineHd { base: c, .. }
            | ModelSpec::QuantizedI8OnlineHd { base: c, .. } => c.seed = seed,
            ModelSpec::CentroidHd(c) => c.seed = seed,
            ModelSpec::BoostHd(c)
            | ModelSpec::QuantizedBoostHd { base: c, .. }
            | ModelSpec::QuantizedI8BoostHd { base: c, .. } => c.seed = seed,
            ModelSpec::Baseline(b) => b.seed = seed,
        }
    }

    /// Returns the spec with its seed replaced (builder-style
    /// [`ModelSpec::set_seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.set_seed(seed);
        self
    }

    /// Serializes the spec as a `[model]` TOML table (the `hdrun` spec-file
    /// format; every field is written explicitly so the file doubles as
    /// documentation of the paper defaults).
    pub fn to_toml(&self) -> String {
        let mut w = TomlWriter::new();
        self.write_toml_table(&mut w, "model");
        w.into_string()
    }

    /// Writes the spec as a named `[table]` into an ongoing document —
    /// campaign spec files hold several model tables (`[model-1]`,
    /// `[model-2]`, ...), all sharing the `[model]` key vocabulary.
    pub fn write_toml_table(&self, w: &mut TomlWriter, table: &str) {
        w.table(table);
        w.str("kind", self.kind_tag());
        match self {
            ModelSpec::OnlineHd(c) => write_online(w, c),
            ModelSpec::CentroidHd(c) => {
                w.int("dim", c.dim as i64);
                w.u64("seed", c.seed);
            }
            ModelSpec::BoostHd(c) => write_boost(w, c),
            ModelSpec::QuantizedOnlineHd { base, refit_epochs } => {
                write_online(w, base);
                w.int("refit_epochs", *refit_epochs as i64);
            }
            ModelSpec::QuantizedBoostHd { base, refit_epochs }
            | ModelSpec::QuantizedI8BoostHd { base, refit_epochs } => {
                write_boost(w, base);
                w.int("refit_epochs", *refit_epochs as i64);
            }
            ModelSpec::QuantizedI8OnlineHd { base, refit_epochs } => {
                write_online(w, base);
                w.int("refit_epochs", *refit_epochs as i64);
            }
            ModelSpec::Baseline(b) => {
                w.u64("seed", b.seed);
                if let Some(n) = b.n_estimators {
                    w.int("n_estimators", n as i64);
                }
                if let Some(e) = b.epochs {
                    w.int("epochs", e as i64);
                }
                if let Some(lr) = b.lr {
                    w.float("lr", lr);
                }
                if let Some(h) = &b.hidden {
                    w.int_array("hidden", h);
                }
            }
        }
    }

    /// Parses a spec from a document containing a `[model]` table (inverse
    /// of [`ModelSpec::to_toml`]; missing optional keys take the paper
    /// defaults).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for malformed TOML, a
    /// missing `[model]` table, an unknown `kind`, or mistyped fields.
    pub fn from_toml_str(text: &str) -> Result<Self> {
        let doc = TomlDoc::parse(text)?;
        let table = doc
            .table("model")
            .ok_or_else(|| spec_err("spec file has no [model] table"))?;
        Self::from_toml_table(table)
    }

    /// Parses a spec from an already-located `[model]` table.
    ///
    /// Unknown keys are rejected: a misspelled hyperparameter
    /// (`dim` for `dim_total`, `n_leaners`, ...) must fail loudly, not
    /// silently train with the paper defaults.
    ///
    /// # Errors
    ///
    /// As [`ModelSpec::from_toml_str`].
    pub fn from_toml_table(table: &TomlTable) -> Result<Self> {
        let kind = table.get_str("kind")?;
        let allowed: &[&str] = match kind {
            "online_hd" => &ONLINE_KEYS,
            "centroid_hd" => &["kind", "dim", "seed"],
            "boost_hd" => &BOOST_KEYS,
            "quantized_online_hd" | "quantized_i8_online_hd" => &QUANT_ONLINE_KEYS,
            "quantized_boost_hd" | "quantized_i8_boost_hd" => &QUANT_BOOST_KEYS,
            _ => &["kind", "seed", "n_estimators", "epochs", "lr", "hidden"],
        };
        if let Some(bad) = table.keys().find(|k| !allowed.contains(k)) {
            return Err(spec_err(format!(
                "unknown key `{bad}` in [model] for kind `{kind}` (allowed: {})",
                allowed.join(", ")
            )));
        }
        Ok(match kind {
            "online_hd" => ModelSpec::OnlineHd(read_online(table)?),
            "centroid_hd" => {
                let mut c = CentroidHdConfig::default();
                if let Some(v) = opt_usize(table, "dim")? {
                    c.dim = v;
                }
                if let Some(v) = opt_u64(table, "seed")? {
                    c.seed = v;
                }
                ModelSpec::CentroidHd(c)
            }
            "boost_hd" => ModelSpec::BoostHd(read_boost(table)?),
            "quantized_online_hd" => ModelSpec::QuantizedOnlineHd {
                base: read_online(table)?,
                refit_epochs: opt_usize(table, "refit_epochs")?.unwrap_or(0),
            },
            "quantized_boost_hd" => ModelSpec::QuantizedBoostHd {
                base: read_boost(table)?,
                refit_epochs: opt_usize(table, "refit_epochs")?.unwrap_or(0),
            },
            "quantized_i8_online_hd" => ModelSpec::QuantizedI8OnlineHd {
                base: read_online(table)?,
                refit_epochs: opt_usize(table, "refit_epochs")?.unwrap_or(0),
            },
            "quantized_i8_boost_hd" => ModelSpec::QuantizedI8BoostHd {
                base: read_boost(table)?,
                refit_epochs: opt_usize(table, "refit_epochs")?.unwrap_or(0),
            },
            other => {
                let mut b = BaselineSpec::new(BaselineKind::from_tag(other)?, 0x5EED);
                if let Some(v) = opt_u64(table, "seed")? {
                    b.seed = v;
                }
                b.n_estimators = opt_usize(table, "n_estimators")?;
                b.epochs = opt_usize(table, "epochs")?;
                b.lr = opt_float(table, "lr")?;
                b.hidden = match table.get("hidden") {
                    Some(_) => Some(table.get_usize_array("hidden")?),
                    None => None,
                };
                ModelSpec::Baseline(b)
            }
        })
    }
}

/// Key vocabularies per spec kind, shared by the writer and the
/// unknown-key validation in [`ModelSpec::from_toml_table`].
const ONLINE_KEYS: [&str; 6] = ["kind", "dim", "lr", "epochs", "bootstrap", "seed"];
const QUANT_ONLINE_KEYS: [&str; 7] = [
    "kind",
    "dim",
    "lr",
    "epochs",
    "bootstrap",
    "seed",
    "refit_epochs",
];
const BOOST_KEYS: [&str; 13] = [
    "kind",
    "dim_total",
    "n_learners",
    "lr",
    "epochs",
    "bootstrap",
    "voting",
    "mode",
    "sample_mode",
    "boost_shrinkage",
    "weight_clamp",
    "class_balanced_init",
    "seed",
];
const QUANT_BOOST_KEYS: [&str; 14] = [
    "kind",
    "dim_total",
    "n_learners",
    "lr",
    "epochs",
    "bootstrap",
    "voting",
    "mode",
    "sample_mode",
    "boost_shrinkage",
    "weight_clamp",
    "class_balanced_init",
    "seed",
    "refit_epochs",
];

fn opt_usize(table: &TomlTable, key: &str) -> Result<Option<usize>> {
    match table.get(key) {
        Some(_) => Ok(Some(table.get_usize(key)?)),
        None => Ok(None),
    }
}

fn opt_u64(table: &TomlTable, key: &str) -> Result<Option<u64>> {
    match table.get(key) {
        Some(_) => Ok(Some(table.get_u64(key)?)),
        None => Ok(None),
    }
}

fn opt_float(table: &TomlTable, key: &str) -> Result<Option<f64>> {
    match table.get(key) {
        Some(_) => Ok(Some(table.get_float(key)?)),
        None => Ok(None),
    }
}

fn opt_bool(table: &TomlTable, key: &str) -> Result<Option<bool>> {
    match table.get(key) {
        Some(_) => Ok(Some(table.get_bool(key)?)),
        None => Ok(None),
    }
}

fn opt_str<'t>(table: &'t TomlTable, key: &str) -> Result<Option<&'t str>> {
    match table.get(key) {
        Some(_) => table.get_str(key).map(Some),
        None => Ok(None),
    }
}

fn write_online(w: &mut TomlWriter, c: &OnlineHdConfig) {
    w.int("dim", c.dim as i64);
    w.float("lr", c.lr as f64);
    w.int("epochs", c.epochs as i64);
    w.bool("bootstrap", c.bootstrap);
    w.u64("seed", c.seed);
}

fn read_online(table: &TomlTable) -> Result<OnlineHdConfig> {
    let mut c = OnlineHdConfig::default();
    if let Some(v) = opt_usize(table, "dim")? {
        c.dim = v;
    }
    if let Some(v) = opt_float(table, "lr")? {
        c.lr = v as f32;
    }
    if let Some(v) = opt_usize(table, "epochs")? {
        c.epochs = v;
    }
    if let Some(v) = opt_bool(table, "bootstrap")? {
        c.bootstrap = v;
    }
    if let Some(v) = opt_u64(table, "seed")? {
        c.seed = v;
    }
    Ok(c)
}

fn voting_tag(v: Voting) -> &'static str {
    match v {
        Voting::Soft => "soft",
        Voting::Hard => "hard",
    }
}

fn mode_tag(m: EnsembleMode) -> &'static str {
    match m {
        EnsembleMode::Partitioned => "partitioned",
        EnsembleMode::FullDimension => "full_dimension",
    }
}

fn sample_tag(s: SampleMode) -> &'static str {
    match s {
        SampleMode::Resample => "resample",
        SampleMode::Reweight => "reweight",
    }
}

fn write_boost(w: &mut TomlWriter, c: &BoostHdConfig) {
    w.int("dim_total", c.dim_total as i64);
    w.int("n_learners", c.n_learners as i64);
    w.float("lr", c.lr as f64);
    w.int("epochs", c.epochs as i64);
    w.bool("bootstrap", c.bootstrap);
    w.str("voting", voting_tag(c.voting));
    w.str("mode", mode_tag(c.mode));
    w.str("sample_mode", sample_tag(c.sample_mode));
    w.float("boost_shrinkage", c.boost_shrinkage);
    w.float("weight_clamp", c.weight_clamp);
    w.bool("class_balanced_init", c.class_balanced_init);
    w.u64("seed", c.seed);
}

fn read_boost(table: &TomlTable) -> Result<BoostHdConfig> {
    let mut c = BoostHdConfig::default();
    if let Some(v) = opt_usize(table, "dim_total")? {
        c.dim_total = v;
    }
    if let Some(v) = opt_usize(table, "n_learners")? {
        c.n_learners = v;
    }
    if let Some(v) = opt_float(table, "lr")? {
        c.lr = v as f32;
    }
    if let Some(v) = opt_usize(table, "epochs")? {
        c.epochs = v;
    }
    if let Some(v) = opt_bool(table, "bootstrap")? {
        c.bootstrap = v;
    }
    if let Some(v) = opt_str(table, "voting")? {
        c.voting = match v {
            "soft" => Voting::Soft,
            "hard" => Voting::Hard,
            other => return Err(spec_err(format!("unknown voting `{other}`"))),
        };
    }
    if let Some(v) = opt_str(table, "mode")? {
        c.mode = match v {
            "partitioned" => EnsembleMode::Partitioned,
            "full_dimension" => EnsembleMode::FullDimension,
            other => return Err(spec_err(format!("unknown ensemble mode `{other}`"))),
        };
    }
    if let Some(v) = opt_str(table, "sample_mode")? {
        c.sample_mode = match v {
            "resample" => SampleMode::Resample,
            "reweight" => SampleMode::Reweight,
            other => return Err(spec_err(format!("unknown sample mode `{other}`"))),
        };
    }
    if let Some(v) = opt_float(table, "boost_shrinkage")? {
        c.boost_shrinkage = v;
    }
    if let Some(v) = opt_float(table, "weight_clamp")? {
        c.weight_clamp = v;
    }
    if let Some(v) = opt_bool(table, "class_balanced_init")? {
        c.class_balanced_init = v;
    }
    if let Some(v) = opt_u64(table, "seed")? {
        c.seed = v;
    }
    Ok(c)
}

/// Every spec variant at paper-default hyperparameters — the sweep axis
/// used by round-trip tests and the design-space tooling.
pub fn default_specs(seed: u64) -> Vec<ModelSpec> {
    vec![
        ModelSpec::OnlineHd(OnlineHdConfig {
            seed,
            ..Default::default()
        }),
        ModelSpec::CentroidHd(CentroidHdConfig {
            seed,
            ..Default::default()
        }),
        ModelSpec::BoostHd(BoostHdConfig {
            seed,
            ..Default::default()
        }),
        ModelSpec::QuantizedOnlineHd {
            base: OnlineHdConfig {
                seed,
                ..Default::default()
            },
            refit_epochs: 5,
        },
        ModelSpec::QuantizedBoostHd {
            base: BoostHdConfig {
                seed,
                ..Default::default()
            },
            refit_epochs: 5,
        },
        ModelSpec::QuantizedI8OnlineHd {
            base: OnlineHdConfig {
                seed,
                ..Default::default()
            },
            refit_epochs: 2,
        },
        ModelSpec::QuantizedI8BoostHd {
            base: BoostHdConfig {
                seed,
                ..Default::default()
            },
            refit_epochs: 2,
        },
        ModelSpec::Baseline(BaselineSpec::new(BaselineKind::AdaBoost, seed)),
        ModelSpec::Baseline(BaselineSpec::new(BaselineKind::RandomForest, seed)),
        ModelSpec::Baseline(BaselineSpec::new(BaselineKind::Gbt, seed)),
        ModelSpec::Baseline(BaselineSpec::new(BaselineKind::Svm, seed)),
        ModelSpec::Baseline(BaselineSpec::new(BaselineKind::Mlp, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips_through_toml() {
        for (i, spec) in default_specs(17).into_iter().enumerate() {
            let text = spec.to_toml();
            let back = ModelSpec::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("variant {i} failed to re-parse: {e}\n{text}"));
            assert_eq!(back, spec, "variant {i} drifted through TOML:\n{text}");
        }
    }

    #[test]
    fn non_default_fields_round_trip() {
        let spec = ModelSpec::BoostHd(BoostHdConfig {
            dim_total: 1234,
            n_learners: 7,
            lr: 0.06,
            epochs: 3,
            bootstrap: false,
            voting: Voting::Hard,
            mode: EnsembleMode::FullDimension,
            sample_mode: SampleMode::Reweight,
            boost_shrinkage: 0.5,
            weight_clamp: 2.5,
            class_balanced_init: false,
            seed: 99,
        });
        assert_eq!(ModelSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);

        let spec = ModelSpec::Baseline(BaselineSpec {
            kind: BaselineKind::Mlp,
            seed: 3,
            n_estimators: None,
            epochs: Some(2),
            lr: Some(0.01),
            hidden: Some(vec![64, 32]),
        });
        assert_eq!(ModelSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
    }

    #[test]
    fn missing_keys_take_paper_defaults() {
        let spec = ModelSpec::from_toml_str("[model]\nkind = \"online_hd\"\n").unwrap();
        assert_eq!(spec, ModelSpec::OnlineHd(OnlineHdConfig::default()));
        let spec =
            ModelSpec::from_toml_str("[model]\nkind = \"boost_hd\"\ndim_total = 800\n").unwrap();
        match spec {
            ModelSpec::BoostHd(c) => {
                assert_eq!(c.dim_total, 800);
                assert_eq!(c.n_learners, BoostHdConfig::default().n_learners);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_and_bad_enum_tags_fail() {
        assert!(ModelSpec::from_toml_str("[model]\nkind = \"mystery\"\n").is_err());
        assert!(
            ModelSpec::from_toml_str("[model]\nkind = \"boost_hd\"\nvoting = \"loud\"\n").is_err()
        );
        assert!(ModelSpec::from_toml_str("no model table here = 1\n").is_err());
    }

    #[test]
    fn misspelled_hyperparameters_are_rejected_not_defaulted() {
        // `dim` on boost_hd (user meant dim_total) must not silently train
        // at the paper-default D=4000.
        let err =
            ModelSpec::from_toml_str("[model]\nkind = \"boost_hd\"\ndim = 2000\n").unwrap_err();
        assert!(err.to_string().contains("dim"), "{err}");
        assert!(err.to_string().contains("dim_total"), "{err}");
        let err =
            ModelSpec::from_toml_str("[model]\nkind = \"boost_hd\"\nn_leaners = 20\n").unwrap_err();
        assert!(err.to_string().contains("n_leaners"), "{err}");
        assert!(
            ModelSpec::from_toml_str("[model]\nkind = \"online_hd\"\nrefit_epochs = 2\n").is_err(),
            "refit_epochs belongs to the quantized variants only"
        );
        assert!(
            ModelSpec::from_toml_str("[model]\nkind = \"svm\"\nhidden = [3]\n").is_ok(),
            "baseline key vocabulary is shared across families"
        );
    }

    #[test]
    fn reseeding_touches_every_variant() {
        for spec in default_specs(1) {
            let reseeded = spec.clone().with_seed(777);
            let text = reseeded.to_toml();
            assert!(text.contains("seed = 777"), "{text}");
            assert_ne!(reseeded, spec);
        }
    }

    #[test]
    fn display_names_match_paper_columns() {
        let names: Vec<&str> = default_specs(0).iter().map(|s| s.display_name()).collect();
        assert!(names.contains(&"BoostHD"));
        assert!(names.contains(&"XGBoost"));
        assert!(names.contains(&"DNN"));
    }
}
