//! BoostHD: AdaBoost over weak OnlineHD learners in partitioned hyperspace.
//!
//! This is the paper's contribution (Section III, Algorithm 1). Instead of a
//! single strong learner owning all `D` dimensions, the hyperspace is split
//! into `n` disjoint segments of `D/n` dimensions ([`hdc::DimensionPartition`]),
//! each owned by a weak [`OnlineHD`-style](crate::OnlineHd) learner. Weak
//! learners train *sequentially* under boosting sample re-weighting: after
//! learner `i` trains, its weighted error rate `ε_i` determines both its vote
//! weight `α_i` and the re-weighting that focuses learner `i+1` on the
//! samples learner `i` got wrong.
//!
//! The paper's Algorithm 1 sketches the loop loosely; we implement the
//! standard multi-class **SAMME** rule it describes in prose ("query weights
//! and model importances dynamically adjusted based on model error rates"):
//!
//! ```text
//! ε_i = Σ_j w_j · 1[ŷ_j ≠ y_j]                       (weighted error)
//! α_i = ln((1 − ε_i)/ε_i) + ln(K − 1)                (learner weight)
//! w_j ← w_j · exp(α_i · 1[ŷ_j ≠ y_j]);  w ← w / Σw   (sample re-weighting)
//! ```
//!
//! Inference aggregates learner votes: `ŷ = argmax_l Σ_i α_i · vote_i(l)`
//! (Algorithm 1's inference procedure), with either *hard* votes (the
//! learner's predicted class gets its full `α_i`) or *soft* votes (every
//! class receives `α_i · δ_i(l)`); see [`Voting`].
//!
//! Encoding is shared: samples are encoded **once** at full `D`, and each
//! weak learner reads its column slice. Total train/inference compute
//! therefore matches a single OnlineHD of the same `D_total` (plus `k`
//! dot products per learner), which is what makes the Table II latencies
//! land next to OnlineHD's.

use crate::classifier::{argmax, argmax_rows, predict_batch_chunked, Classifier};
use crate::error::{BoostHdError, Result};
use crate::online::{
    normalize_rows, normalize_weights, scores_unit_classes, scores_unit_classes_batch,
    train_class_hvs, validate_training_inputs,
};
use faults::Perturbable;
use hdc::encoder::{Encode, SinusoidEncoder};
use hdc::DimensionPartition;
use linalg::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// How weak-learner votes are aggregated at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Voting {
    /// Confidence voting: learner `i` adds `α_i · δ_i(l)` to every class
    /// `l`, where `δ_i(l)` is its cosine similarity to class `l`. This is
    /// the literal reading of Algorithm 1's inference
    /// (`ŷs = f_θ(x); ŷ = argmax(Σ ŷs · α)` — the score *vector* is
    /// weighted and summed) and the default.
    #[default]
    Soft,
    /// SAMME discrete voting: learner `i` adds `α_i` to its predicted class
    /// only. Ablation mode.
    Hard,
}

/// How boosting sample weights reach the weak learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SampleMode {
    /// Draw a weighted bootstrap of the training set each round and train
    /// the weak learner unweighted (AdaBoost "by resampling"). The paper's
    /// OnlineHD setup enables bootstrap resampling, and the resample adds
    /// bagging-style diversity across weak learners — the stability
    /// mechanism behind Figure 6 — while staying robust when boosting
    /// weights concentrate on noisy labels. The default.
    #[default]
    Resample,
    /// Scale each sample's OnlineHD update by its boosting weight
    /// (AdaBoost "by reweighting"). Ablation mode.
    Reweight,
}

/// How weak learners relate to the hyperspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EnsembleMode {
    /// The paper's partitioning: one shared full-`D` encoder, each learner
    /// owns a disjoint `D/n` column slice. Total compute ≈ one strong
    /// learner. The default.
    #[default]
    Partitioned,
    /// The "simplistic parallel ensemble" the paper argues against: every
    /// weak learner gets its own independent full-`D` encoder, multiplying
    /// train and inference cost by `n`. Kept for the ablation benchmark.
    FullDimension,
}

/// Configuration for [`BoostHd`].
///
/// Defaults mirror the paper's setup: `D_total = 4000`, `N_L = 10` weak
/// learners (so `D_wl = 400`), OnlineHD weak learners with `lr = 0.035` and
/// bootstrap bundling, hard SAMME voting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostHdConfig {
    /// Total hyperspace dimensionality `D_total` shared by all learners.
    pub dim_total: usize,
    /// Number of weak learners `N_L`.
    pub n_learners: usize,
    /// Weak-learner refinement learning rate (paper: 0.035).
    pub lr: f32,
    /// Weak-learner refinement epochs.
    pub epochs: usize,
    /// Whether weak learners run the initial bundling pass.
    pub bootstrap: bool,
    /// Vote aggregation rule.
    pub voting: Voting,
    /// Encoder layout (partitioned vs full-dimension ablation).
    pub mode: EnsembleMode,
    /// How boosting weights reach weak learners.
    pub sample_mode: SampleMode,
    /// Shrinkage on the sample re-weighting exponent (1.0 = full SAMME;
    /// smaller values damp the focus on hard samples, useful under label
    /// noise).
    pub boost_shrinkage: f64,
    /// Upper bound on any sample's weight as a multiple of the uniform
    /// weight `1/n`. Caps the runaway emphasis AdaBoost places on
    /// frequently-misclassified (often mislabeled) samples — the classic
    /// robust-boosting guard for noisy healthcare annotations. Use
    /// `f64::INFINITY` for textbook SAMME.
    pub weight_clamp: f64,
    /// Initialize sample weights inversely proportional to class frequency
    /// (cost-sensitive boosting) instead of uniformly. Algorithm 1 leaves
    /// the `Ws` initialization open; the balanced choice is what lets the
    /// boosted ensemble hold its macro accuracy on imbalanced cohorts
    /// (Figure 7) — every weak learner's weighted resample starts
    /// class-balanced, which no monolithic learner sees.
    pub class_balanced_init: bool,
    /// Seed for the shared random projection.
    pub seed: u64,
}

impl Default for BoostHdConfig {
    fn default() -> Self {
        Self {
            dim_total: 4000,
            n_learners: 10,
            lr: 0.035,
            epochs: 20,
            bootstrap: true,
            voting: Voting::Soft,
            mode: EnsembleMode::Partitioned,
            sample_mode: SampleMode::Resample,
            boost_shrinkage: 1.0,
            weight_clamp: 8.0,
            class_balanced_init: true,
            seed: 0x5EED,
        }
    }
}

/// One trained weak learner: its class hypervectors, vote weight, and the
/// dimension segment it owns.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WeakLearner {
    class_hvs: Matrix,
    alpha: f32,
    seg_start: usize,
    seg_end: usize,
    /// Present only in [`EnsembleMode::FullDimension`]: the learner's private
    /// encoder (otherwise the parent's slice is used).
    own_encoder: Option<SinusoidEncoder>,
}

impl WeakLearner {
    fn scores(&self, full_h: &[f32], x: &[f32]) -> Vec<f32> {
        match &self.own_encoder {
            None => scores_unit_classes(&self.class_hvs, &full_h[self.seg_start..self.seg_end]),
            Some(enc) => {
                let h = enc.encode_row(x);
                scores_unit_classes(&self.class_hvs, &h)
            }
        }
    }
}

/// A trained BoostHD ensemble.
///
/// Construct with [`BoostHd::fit`]; see the [module docs](self) for the
/// algorithm and the crate root for a runnable quickstart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoostHd {
    encoder: SinusoidEncoder,
    partition: DimensionPartition,
    learners: Vec<WeakLearner>,
    num_classes: usize,
    config: BoostHdConfig,
    train_errors: Vec<f64>,
}

impl BoostHd {
    /// Trains the boosted ensemble on feature rows `x` with labels `y`.
    ///
    /// # Errors
    ///
    /// * [`BoostHdError::InvalidConfig`] if `dim_total` or `n_learners` is
    ///   zero, `n_learners > dim_total`, or the learning rate is
    ///   non-positive;
    /// * [`BoostHdError::DataMismatch`] for empty data, label/feature row
    ///   disagreement, or fewer than two classes (boosting weights are
    ///   undefined for `K < 2`).
    pub fn fit(config: &BoostHdConfig, x: &Matrix, y: &[usize]) -> Result<Self> {
        Self::fit_with_threads(config, x, y, crate::parallel::default_threads())
    }

    /// [`BoostHd::fit`] with an explicit worker count for the
    /// embarrassingly-parallel per-learner encodes of the
    /// [`EnsembleMode::FullDimension`] ablation (the boosting rounds stay
    /// sequential regardless). The trained ensemble is bit-identical for
    /// every `threads` value; `fit` passes
    /// [`crate::parallel::default_threads`].
    ///
    /// Peak memory in `FullDimension` mode scales with the wave: each wave
    /// holds up to `threads` private encoders plus full-batch encodings
    /// (`threads × n × D` f32) in flight at once, versus one at a time for
    /// `threads = 1` — size `threads` accordingly for large cohorts.
    /// `Partitioned` mode is unaffected (nothing is encoded per learner).
    pub(crate) fn fit_with_threads(
        config: &BoostHdConfig,
        x: &Matrix,
        y: &[usize],
        threads: usize,
    ) -> Result<Self> {
        validate_training_inputs(x, y, None)?;
        if config.lr <= 0.0 {
            return Err(BoostHdError::InvalidConfig {
                reason: format!("learning rate must be positive, got {}", config.lr),
            });
        }
        let num_classes = y.iter().copied().max().expect("validated non-empty") + 1;
        if num_classes < 2 {
            return Err(BoostHdError::DataMismatch {
                reason: "boosting requires at least two classes".into(),
            });
        }
        let partition =
            DimensionPartition::new(config.dim_total, config.n_learners).map_err(|e| {
                BoostHdError::InvalidConfig {
                    reason: e.to_string(),
                }
            })?;

        let mut rng = Rng64::seed_from(config.seed);
        let encoder = SinusoidEncoder::try_new(config.dim_total, x.cols(), &mut rng)
            .map_err(BoostHdError::from)?;

        // Encode once at full D; learners read column slices (Partitioned)
        // or re-encode with private projections (FullDimension ablation).
        let z = match config.mode {
            EnsembleMode::Partitioned => Some(encoder.encode_batch(x)),
            EnsembleMode::FullDimension => None,
        };

        // Pre-draw every per-learner RNG fork in the exact order the
        // sequential loop used to consume them — per learner, the private-
        // encoder fork (FullDimension only) precedes the resample fork
        // (Resample only) — so restructuring the loop into waves below
        // cannot shift any stream: models stay bit-identical.
        let mut enc_rngs: Vec<Option<Rng64>> = Vec::with_capacity(config.n_learners);
        let mut resample_rngs: Vec<Option<Rng64>> = Vec::with_capacity(config.n_learners);
        for i in 0..config.n_learners {
            enc_rngs.push(match config.mode {
                EnsembleMode::FullDimension => Some(rng.fork(i as u64)),
                EnsembleMode::Partitioned => None,
            });
            resample_rngs.push(match config.sample_mode {
                SampleMode::Resample => Some(rng.fork(0x4E5A + i as u64)),
                SampleMode::Reweight => None,
            });
        }

        let n = y.len();
        let mut weights = if config.class_balanced_init {
            let mut counts = vec![0usize; num_classes];
            for &yi in y {
                counts[yi] += 1;
            }
            let per_class = 1.0 / num_classes as f64;
            y.iter()
                .map(|&yi| per_class / counts[yi].max(1) as f64)
                .collect::<Vec<f64>>()
        } else {
            vec![1.0f64 / n as f64; n]
        };
        // Per-sample weight ceilings: `weight_clamp ×` the initial weight,
        // so the cap composes with class-balanced initialization.
        let weight_caps: Vec<f64> = weights.iter().map(|w| w * config.weight_clamp).collect();
        let mut learners = Vec::with_capacity(config.n_learners);
        let mut train_errors = Vec::with_capacity(config.n_learners);

        // FullDimension ablation learners each own a private full-`D`
        // encoder, so the expensive part of their round — projection
        // sampling plus the full-batch encode GEMM — is independent across
        // learners. Process learners in waves of `threads`, encoding each
        // wave in parallel while the SAMME boosting rounds below stay
        // strictly sequential (the paper's re-weighting chain). Partitioned
        // mode encodes nothing per learner and runs as one wave.
        let wave = match config.mode {
            EnsembleMode::Partitioned => config.n_learners.max(1),
            EnsembleMode::FullDimension => threads.max(1),
        };
        let mut wave_start = 0usize;
        while wave_start < config.n_learners {
            let wave_end = (wave_start + wave).min(config.n_learners);
            let mut wave_encodings: Vec<Option<(SinusoidEncoder, Matrix)>> = match config.mode {
                EnsembleMode::Partitioned => Vec::new(),
                EnsembleMode::FullDimension => {
                    let enc_rngs = &enc_rngs;
                    crate::parallel::parallel_map_indices(
                        wave_end - wave_start,
                        wave_end - wave_start,
                        |k| {
                            let mut child = enc_rngs[wave_start + k]
                                .clone()
                                .expect("encoder fork pre-drawn");
                            let enc =
                                SinusoidEncoder::try_new(config.dim_total, x.cols(), &mut child)
                                    .map_err(BoostHdError::from)?;
                            let zi = enc.encode_batch(x);
                            Ok((enc, zi))
                        },
                    )
                    .into_iter()
                    .map(|r: Result<(SinusoidEncoder, Matrix)>| r.map(Some))
                    .collect::<Result<_>>()?
                }
            };

            for i in wave_start..wave_end {
                let seg = partition.segment(i);
                let (zi, own_encoder) = match config.mode {
                    EnsembleMode::Partitioned => (
                        z.as_ref()
                            .expect("encoded batch exists in partitioned mode")
                            .slice_columns(seg.start, seg.end),
                        None,
                    ),
                    EnsembleMode::FullDimension => {
                        let (enc, zi) = wave_encodings[i - wave_start]
                            .take()
                            .expect("wave encoding present");
                        (zi, Some(enc))
                    }
                };

                let mut class_hvs = match config.sample_mode {
                    SampleMode::Reweight => {
                        let scale = normalize_weights(Some(&weights), n);
                        train_class_hvs(
                            &zi,
                            y,
                            &scale,
                            num_classes,
                            config.lr,
                            config.epochs,
                            config.bootstrap,
                        )
                    }
                    SampleMode::Resample => {
                        let mut round_rng =
                            resample_rngs[i].take().expect("resample fork pre-drawn");
                        let picks = weighted_bootstrap(&weights, n, &mut round_rng);
                        let zb = zi.select_rows(&picks);
                        let yb: Vec<usize> = picks.iter().map(|&p| y[p]).collect();
                        train_class_hvs(
                            &zb,
                            &yb,
                            &vec![1.0; n],
                            num_classes,
                            config.lr,
                            config.epochs,
                            config.bootstrap,
                        )
                    }
                };
                normalize_rows(&mut class_hvs);

                // Weighted training error of this weak learner, via one
                // batched scoring sweep over the encoded slice — each entry
                // is the same dispatched dot kernel the per-row path runs,
                // so the predictions match the row loop bit for bit.
                let sims = scores_unit_classes_batch(&class_hvs, &zi);
                let mut err = 0.0f64;
                let mut wrong = vec![false; n];
                for r in 0..n {
                    let pred = argmax(sims.row(r));
                    if pred != y[r] {
                        err += weights[r];
                        wrong[r] = true;
                    }
                }
                train_errors.push(err);

                // SAMME learner weight. Clamp the error into (0, 1 − 1/K) so a
                // perfect learner keeps a finite α and a worse-than-random one
                // contributes (approximately) nothing instead of voting
                // negatively.
                let k = num_classes as f64;
                let eps = 1e-10;
                let clamped = err.clamp(eps, 1.0 - 1.0 / k - eps);
                let alpha = (((1.0 - clamped) / clamped).ln() + (k - 1.0).ln()).max(0.0) as f32;

                // Re-weight samples: misclassified gain exp(trust · shrinkage · α),
                // bounded by the clamp so mislabeled points cannot monopolize
                // subsequent learners. `trust` scales the emphasis by how far
                // the weak learner beats chance: on clean data (ε ≈ 0) this is
                // textbook SAMME; when ε approaches the chance error the round
                // carries no signal worth amplifying — mostly annotation noise
                // in the healthcare setting — and re-weighting fades out.
                let chance_err = 1.0 - 1.0 / k;
                let trust = ((chance_err - err) / chance_err).clamp(0.0, 1.0).powi(2);
                let boost = (config.boost_shrinkage * trust * alpha as f64).exp();
                let mut total = 0.0f64;
                for r in 0..n {
                    if wrong[r] {
                        weights[r] = (weights[r] * boost).min(weight_caps[r]);
                    }
                    total += weights[r];
                }
                for w in &mut weights {
                    *w /= total;
                }

                learners.push(WeakLearner {
                    class_hvs,
                    alpha,
                    seg_start: seg.start,
                    seg_end: seg.end,
                    own_encoder,
                });
            }
            wave_start = wave_end;
        }

        Ok(Self {
            encoder,
            partition,
            learners,
            num_classes,
            config: *config,
            train_errors,
        })
    }

    /// Vote weights `α_i` of the weak learners, in training order.
    pub fn alphas(&self) -> Vec<f32> {
        self.learners.iter().map(|l| l.alpha).collect()
    }

    /// Weighted training error `ε_i` of each weak learner at the time it was
    /// trained (before subsequent re-weighting).
    pub fn training_errors(&self) -> &[f64] {
        &self.train_errors
    }

    /// The dimension partition mapping learners to hyperspace segments.
    pub fn partition(&self) -> &DimensionPartition {
        &self.partition
    }

    /// Number of weak learners `N_L`.
    pub fn num_learners(&self) -> usize {
        self.learners.len()
    }

    /// Total hyperspace dimensionality `D_total`.
    pub fn dim_total(&self) -> usize {
        self.config.dim_total
    }

    /// The configuration the ensemble was trained with.
    pub fn config(&self) -> &BoostHdConfig {
        &self.config
    }

    /// The shared full-`D` encoder.
    pub fn encoder(&self) -> &SinusoidEncoder {
        &self.encoder
    }

    /// Class hypervectors of weak learner `i` (a `classes × D/n` matrix).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_learners()`.
    pub fn learner_class_hypervectors(&self, i: usize) -> &Matrix {
        &self.learners[i].class_hvs
    }

    /// All per-learner class hypervectors embedded into the full-`D` space
    /// and stacked into an `(n·k) × D` matrix — the `K` matrix whose span
    /// utilization Figure 5 compares against OnlineHD's.
    ///
    /// Only meaningful in [`EnsembleMode::Partitioned`]; full-dimension
    /// learners are embedded at their nominal segments for comparability.
    pub fn stacked_class_hypervectors(&self) -> Matrix {
        let blocks: Vec<(std::ops::Range<usize>, &Matrix)> = self
            .learners
            .iter()
            .map(|l| (l.seg_start..l.seg_end, &l.class_hvs))
            .collect();
        let usable: Vec<_> = blocks
            .iter()
            .filter(|(r, m)| r.len() == m.cols())
            .cloned()
            .collect();
        hdc::span::embed_blocks(&usable, self.config.dim_total)
    }

    /// Internal view of learner `i` for persistence: `(α, seg_start,
    /// seg_end, private encoder)`.
    pub(crate) fn learner_parts(&self, i: usize) -> (f32, usize, usize, Option<&SinusoidEncoder>) {
        let l = &self.learners[i];
        (l.alpha, l.seg_start, l.seg_end, l.own_encoder.as_ref())
    }

    /// Reassembles an ensemble from stored parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] if segments or class-matrix
    /// shapes are inconsistent with the configuration.
    pub(crate) fn from_parts(
        encoder: SinusoidEncoder,
        learners: Vec<(f32, usize, usize, Matrix, Option<SinusoidEncoder>)>,
        num_classes: usize,
        config: BoostHdConfig,
        train_errors: Vec<f64>,
    ) -> Result<Self> {
        let partition =
            DimensionPartition::new(config.dim_total, config.n_learners).map_err(|e| {
                BoostHdError::InvalidConfig {
                    reason: e.to_string(),
                }
            })?;
        let learners: Vec<WeakLearner> = learners
            .into_iter()
            .map(|(alpha, seg_start, seg_end, class_hvs, own_encoder)| {
                if seg_start > seg_end || seg_end > config.dim_total {
                    return Err(BoostHdError::DataMismatch {
                        reason: format!("segment {seg_start}..{seg_end} out of bounds"),
                    });
                }
                if own_encoder.is_none() && class_hvs.cols() != seg_end - seg_start {
                    return Err(BoostHdError::DataMismatch {
                        reason: "class hypervector width disagrees with segment".into(),
                    });
                }
                Ok(WeakLearner {
                    class_hvs,
                    alpha,
                    seg_start,
                    seg_end,
                    own_encoder,
                })
            })
            .collect::<Result<_>>()?;
        Ok(Self {
            encoder,
            partition,
            learners,
            num_classes,
            config,
            train_errors,
        })
    }

    /// Quantizes every weak learner's class hypervectors to bipolar
    /// `{−1, +1}` in place — the 1-bit representation HDC accelerators
    /// store. See [`crate::OnlineHd::quantize_bipolar`].
    pub fn quantize_bipolar(&mut self) {
        for learner in &mut self.learners {
            for r in 0..learner.class_hvs.rows() {
                let row = learner.class_hvs.row_mut(r);
                let q = hdc::ops::to_bipolar(row);
                row.copy_from_slice(&q);
                hdc::ops::normalize_inplace(row);
            }
        }
    }

    /// Predicts every row of `x` using `threads` worker threads, each
    /// running the batched encode-GEMM + vote aggregation on a contiguous
    /// chunk of the batch.
    ///
    /// Inference is embarrassingly parallel across queries (the paper's
    /// "parallelization becomes feasible during the inference phase"); this
    /// is the path behind BoostHD's Table II latencies on wide-input
    /// datasets. Identical to [`Classifier::predict_batch`] for any thread
    /// count.
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        predict_batch_chunked(self, x, threads)
    }

    fn votes_for_encoded(&self, full_h: &[f32], x: &[f32]) -> Vec<f32> {
        let mut votes = vec![0.0f32; self.num_classes];
        for learner in &self.learners {
            let sims = learner.scores(full_h, x);
            match self.config.voting {
                Voting::Hard => votes[argmax(&sims)] += learner.alpha,
                Voting::Soft => {
                    for (v, s) in votes.iter_mut().zip(sims.iter()) {
                        *v += learner.alpha * s;
                    }
                }
            }
        }
        votes
    }

    /// Accumulates one learner's `α`-weighted votes for a chunk of batch
    /// rows into the `samples × classes` vote matrix starting at row
    /// `offset`, given that learner's per-chunk similarity matrix.
    fn accumulate_votes(&self, votes: &mut Matrix, offset: usize, sims: &Matrix, alpha: f32) {
        for r in 0..sims.rows() {
            let sims_row = sims.row(r);
            let vote_row = votes.row_mut(offset + r);
            match self.config.voting {
                Voting::Hard => vote_row[argmax(sims_row)] += alpha,
                Voting::Soft => {
                    for (v, s) in vote_row.iter_mut().zip(sims_row.iter()) {
                        *v += alpha * s;
                    }
                }
            }
        }
    }
}

/// Draws `count` indices from the weighted bootstrap distribution via the
/// inverse CDF.
fn weighted_bootstrap(weights: &[f64], count: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0f64;
    for &w in weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    (0..count)
        .map(|_| {
            let u = rng.uniform() as f64 * total;
            match cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("finite weights")) {
                Ok(i) => i,
                Err(i) => i.min(weights.len() - 1),
            }
        })
        .collect()
}

impl Classifier for BoostHd {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let full_h = match self.config.mode {
            EnsembleMode::Partitioned => self.encoder.encode_row(x),
            EnsembleMode::FullDimension => Vec::new(),
        };
        self.votes_for_encoded(&full_h, x)
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        // Walk the batch in row chunks through a reused encode buffer:
        // each chunk is encoded once (shared full-`D` GEMM for partitioned
        // learners, one GEMM per private encoder in the full-dimension
        // ablation), then every learner scores it with one batched
        // similarity product — learners visited in training order so vote
        // sums accumulate exactly like the row path.
        let mut votes = Matrix::zeros(x.rows(), self.num_classes);
        let needs_full = self.learners.iter().any(|l| l.own_encoder.is_none());
        let mut zbuf = Matrix::zeros(0, 0);
        let mut start = 0;
        while start < x.rows() {
            let end = (start + crate::online::score_chunk()).min(x.rows());
            let xc = x.slice_rows(start, end);
            if needs_full {
                self.encoder.encode_batch_into(&xc, &mut zbuf);
            }
            for learner in &self.learners {
                let sims = match &learner.own_encoder {
                    None => {
                        let zi = zbuf.slice_columns(learner.seg_start, learner.seg_end);
                        scores_unit_classes_batch(&learner.class_hvs, &zi)
                    }
                    Some(enc) => {
                        scores_unit_classes_batch(&learner.class_hvs, &enc.encode_batch(&xc))
                    }
                };
                self.accumulate_votes(&mut votes, start, &sims, learner.alpha);
            }
            start = end;
        }
        votes
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.scores_batch(x))
    }
}

impl Perturbable for BoostHd {
    fn param_buffers_mut(&mut self) -> Vec<&mut [f32]> {
        self.learners
            .iter_mut()
            .map(|l| l.class_hvs.as_mut_slice())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64, sep: f32, noise: f32) -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(seed);
        let centers = [(-1.0f32, -1.0f32), (1.0, 1.0), (-1.0, 1.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = centers[class];
            rows.push(vec![
                cx * sep + noise * rng.normal(),
                cy * sep + noise * rng.normal(),
                noise * rng.normal(),
            ]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn accuracy(model: &impl Classifier, x: &Matrix, y: &[usize]) -> f64 {
        model
            .predict_batch(x)
            .iter()
            .zip(y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64
    }

    fn small_config() -> BoostHdConfig {
        BoostHdConfig {
            dim_total: 640,
            n_learners: 8,
            epochs: 8,
            ..BoostHdConfig::default()
        }
    }

    #[test]
    fn learns_three_blobs() {
        let (x, y) = blobs(240, 1, 1.0, 0.35);
        let model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        assert!(accuracy(&model, &x, &y) > 0.95);
        assert_eq!(model.num_learners(), 8);
        assert_eq!(model.num_classes(), 3);
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (xtr, ytr) = blobs(300, 2, 1.0, 0.35);
        let (xte, yte) = blobs(120, 77, 1.0, 0.35);
        let model = BoostHd::fit(&small_config(), &xtr, &ytr).unwrap();
        assert!(accuracy(&model, &xte, &yte) > 0.9);
    }

    #[test]
    fn alphas_are_finite_and_nonnegative() {
        let (x, y) = blobs(150, 3, 1.0, 0.4);
        let model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        for a in model.alphas() {
            assert!(a.is_finite() && a >= 0.0);
        }
        assert_eq!(model.training_errors().len(), 8);
    }

    #[test]
    fn later_learners_see_harder_distribution() {
        // With heavy class overlap, boosting should produce non-trivially
        // varying training errors (re-weighting changes the problem).
        let (x, y) = blobs(300, 4, 0.5, 0.8);
        let model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        let errs = model.training_errors();
        let all_same = errs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12);
        assert!(
            !all_same,
            "training errors should vary across learners: {errs:?}"
        );
    }

    #[test]
    fn predict_batch_matches_rowwise() {
        let (x, y) = blobs(90, 5, 1.0, 0.4);
        let model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        let batch = model.predict_batch(&x);
        let rowwise: Vec<usize> = (0..x.rows()).map(|r| model.predict(x.row(r))).collect();
        assert_eq!(batch, rowwise);
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let (x, y) = blobs(120, 6, 1.0, 0.4);
        let model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        assert_eq!(model.predict_batch(&x), model.predict_batch_parallel(&x, 4));
    }

    #[test]
    fn soft_voting_works() {
        let (x, y) = blobs(150, 7, 1.0, 0.4);
        let config = BoostHdConfig {
            voting: Voting::Soft,
            ..small_config()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        assert!(accuracy(&model, &x, &y) > 0.9);
    }

    #[test]
    fn full_dimension_mode_works() {
        let (x, y) = blobs(120, 8, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 256,
            n_learners: 4,
            epochs: 5,
            mode: EnsembleMode::FullDimension,
            ..BoostHdConfig::default()
        };
        let model = BoostHd::fit(&config, &x, &y).unwrap();
        assert!(accuracy(&model, &x, &y) > 0.9);
        assert_eq!(model.predict_batch(&x), {
            let rowwise: Vec<usize> = (0..x.rows()).map(|r| model.predict(x.row(r))).collect();
            rowwise
        });
    }

    #[test]
    fn full_dimension_training_is_thread_invariant() {
        // The ablation's wave-parallel private-encoder encode must leave
        // the trained ensemble bit-identical for any worker count.
        let (x, y) = blobs(90, 21, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 192,
            n_learners: 6,
            epochs: 4,
            mode: EnsembleMode::FullDimension,
            ..BoostHdConfig::default()
        };
        let serial = BoostHd::fit_with_threads(&config, &x, &y, 1).unwrap();
        let parallel = BoostHd::fit_with_threads(&config, &x, &y, 4).unwrap();
        assert_eq!(serial.alphas(), parallel.alphas());
        for i in 0..serial.num_learners() {
            assert_eq!(
                serial.learner_class_hypervectors(i),
                parallel.learner_class_hypervectors(i),
                "learner {i}"
            );
        }
    }

    #[test]
    fn stacked_class_hvs_have_expected_shape() {
        let (x, y) = blobs(90, 9, 1.0, 0.4);
        let model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        let stacked = model.stacked_class_hypervectors();
        assert_eq!(stacked.rows(), 8 * 3);
        assert_eq!(stacked.cols(), 640);
        // Rows from different learners live in disjoint column ranges.
        let r0 = stacked.row(0); // learner 0
        let r_last = stacked.row(8 * 3 - 1); // learner 7
        let overlap: f32 = r0.iter().zip(r_last.iter()).map(|(a, b)| a * b).sum();
        assert_eq!(overlap, 0.0);
    }

    #[test]
    fn single_class_rejected() {
        let (x, _) = blobs(30, 10, 1.0, 0.4);
        let y = vec![0usize; 30];
        assert!(matches!(
            BoostHd::fit(&small_config(), &x, &y),
            Err(BoostHdError::DataMismatch { .. })
        ));
    }

    #[test]
    fn more_learners_than_dims_rejected() {
        let (x, y) = blobs(30, 11, 1.0, 0.4);
        let config = BoostHdConfig {
            dim_total: 4,
            n_learners: 8,
            ..BoostHdConfig::default()
        };
        assert!(matches!(
            BoostHd::fit(&config, &x, &y),
            Err(BoostHdError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reproducible_with_same_seed() {
        let (x, y) = blobs(90, 12, 1.0, 0.4);
        let a = BoostHd::fit(&small_config(), &x, &y).unwrap();
        let b = BoostHd::fit(&small_config(), &x, &y).unwrap();
        assert_eq!(a.alphas(), b.alphas());
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = blobs(90, 13, 0.8, 0.6);
        let a = BoostHd::fit(&small_config(), &x, &y).unwrap();
        let config_b = BoostHdConfig {
            seed: 999,
            ..small_config()
        };
        let b = BoostHd::fit(&config_b, &x, &y).unwrap();
        assert_ne!(
            a.learner_class_hypervectors(0),
            b.learner_class_hypervectors(0)
        );
    }

    #[test]
    fn perturbable_covers_all_learners() {
        let (x, y) = blobs(60, 14, 1.0, 0.4);
        let mut model = BoostHd::fit(&small_config(), &x, &y).unwrap();
        // 8 learners × 3 classes × 80 dims (640/8).
        assert_eq!(model.param_count(), 8 * 3 * 80);
    }

    #[test]
    fn boosthd_beats_single_weak_learner_when_dimension_starved() {
        // The paper's core claim: an ensemble of n dimension-starved weak
        // learners outperforms any one of them. Use D_wl = 6, where a lone
        // OnlineHD is clearly limited, and average both sides over seeds to
        // wash out projection luck.
        use crate::online::{OnlineHd, OnlineHdConfig};
        let (xtr, ytr) = blobs(400, 15, 0.7, 0.5);
        let (xte, yte) = blobs(200, 1234, 0.7, 0.5);
        let mut boost_accs = Vec::new();
        let mut weak_accs = Vec::new();
        for seed in 0..3u64 {
            let boost_config = BoostHdConfig {
                dim_total: 60,
                n_learners: 10,
                epochs: 10,
                seed,
                ..BoostHdConfig::default()
            };
            let boost = BoostHd::fit(&boost_config, &xtr, &ytr).unwrap();
            boost_accs.push(accuracy(&boost, &xte, &yte));
            let weak_config = OnlineHdConfig {
                dim: 6,
                epochs: 10,
                seed,
                ..OnlineHdConfig::default()
            };
            let weak = OnlineHd::fit(&weak_config, &xtr, &ytr).unwrap();
            weak_accs.push(accuracy(&weak, &xte, &yte));
        }
        let boost_acc = boost_accs.iter().sum::<f64>() / boost_accs.len() as f64;
        let weak_acc = weak_accs.iter().sum::<f64>() / weak_accs.len() as f64;
        assert!(
            boost_acc > weak_acc,
            "ensemble {boost_acc} should beat one dimension-starved weak learner {weak_acc}"
        );
    }
}
