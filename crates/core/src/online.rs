//! OnlineHD: single-pass adaptive hyperdimensional classification.
//!
//! Reimplementation of the classifier the paper builds on (its reference
//! \[18\]: Hernández-Cano et al., *"OnlineHD: Robust, efficient, and
//! single-pass online learning using hyperdimensional system"*, DATE 2021).
//! Training is two-phase:
//!
//! 1. **Bootstrap bundling** (optional, enabled in the paper's setup): every
//!    encoded sample is bundled into its class hypervector, `C_y += φ(x)`.
//! 2. **Iterative refinement**: for each sample, compare `φ(x)` against all
//!    class hypervectors with cosine similarity `δ`. On a misclassification
//!    (predicted class `p ≠ y`), pull the true class toward the sample and
//!    push the confused class away, scaled by how *wrong* the similarities
//!    were:
//!
//!    ```text
//!    C_y += lr · (1 − δ(φ, C_y)) · φ
//!    C_p −= lr · (1 − δ(φ, C_p)) · φ
//!    ```
//!
//! The paper configures OnlineHD with learning rate 0.035, bootstrap
//! enabled, and a Gaussian `N(0, 1)` projection encoder — those are this
//! module's defaults.
//!
//! The refinement loop also accepts per-sample weights (uniform for a plain
//! fit), which is the hook BoostHD's booster uses to focus weak learners on
//! previously misclassified samples.

use crate::classifier::{argmax, argmax_rows, Classifier};
use crate::error::{BoostHdError, Result};
use faults::Perturbable;
use hdc::encoder::{Encode, SinusoidEncoder};
use linalg::matrix::{dot, norm};
use linalg::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Configuration for [`OnlineHd`].
///
/// The defaults mirror the paper's experimental setup (Section IV):
/// `lr = 0.035`, bootstrap bundling enabled, `D = 4000`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineHdConfig {
    /// Hyperspace dimensionality `D`.
    pub dim: usize,
    /// Refinement learning rate (paper: 0.035).
    pub lr: f32,
    /// Number of refinement passes over the training set.
    pub epochs: usize,
    /// Whether to run the initial bundling pass before refinement.
    pub bootstrap: bool,
    /// Seed for the encoder's random projection.
    pub seed: u64,
}

impl Default for OnlineHdConfig {
    fn default() -> Self {
        Self {
            dim: 4000,
            lr: 0.035,
            epochs: 20,
            bootstrap: true,
            seed: 0x5EED,
        }
    }
}

/// A trained OnlineHD classifier.
///
/// See the [module documentation](self) for the algorithm and
/// [`OnlineHdConfig`] for the knobs. Construct with [`OnlineHd::fit`] or
/// [`OnlineHd::fit_weighted`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineHd {
    encoder: SinusoidEncoder,
    class_hvs: Matrix,
    num_classes: usize,
    config: OnlineHdConfig,
}

impl OnlineHd {
    /// Trains on feature rows `x` with labels `y` (uniform sample weights).
    ///
    /// # Errors
    ///
    /// See [`OnlineHd::fit_weighted`].
    pub fn fit(config: &OnlineHdConfig, x: &Matrix, y: &[usize]) -> Result<Self> {
        Self::fit_weighted(config, x, y, None)
    }

    /// Trains with optional per-sample weights (used by the booster).
    ///
    /// Weights are normalized internally; only their relative magnitudes
    /// matter.
    ///
    /// # Errors
    ///
    /// * [`BoostHdError::InvalidConfig`] for a zero dimension, non-positive
    ///   learning rate, or zero classes;
    /// * [`BoostHdError::DataMismatch`] for empty data, label/feature row
    ///   disagreement, or weight-length disagreement.
    pub fn fit_weighted(
        config: &OnlineHdConfig,
        x: &Matrix,
        y: &[usize],
        weights: Option<&[f64]>,
    ) -> Result<Self> {
        validate_training_inputs(x, y, weights)?;
        if config.dim == 0 {
            return Err(BoostHdError::InvalidConfig {
                reason: "dimensionality must be positive".into(),
            });
        }
        if config.lr <= 0.0 {
            return Err(BoostHdError::InvalidConfig {
                reason: format!("learning rate must be positive, got {}", config.lr),
            });
        }
        let num_classes = y.iter().copied().max().expect("validated non-empty") + 1;
        let mut rng = Rng64::seed_from(config.seed);
        let encoder =
            SinusoidEncoder::try_new(config.dim, x.cols(), &mut rng).map_err(BoostHdError::from)?;
        let z = encoder.encode_batch(x);
        let normalized = normalize_weights(weights, y.len());
        let mut class_hvs = train_class_hvs(
            &z,
            y,
            &normalized,
            num_classes,
            config.lr,
            config.epochs,
            config.bootstrap,
        );
        normalize_rows(&mut class_hvs);
        Ok(Self {
            encoder,
            class_hvs,
            num_classes,
            config: *config,
        })
    }

    /// The trained class hypervectors as a `classes × D` matrix.
    pub fn class_hypervectors(&self) -> &Matrix {
        &self.class_hvs
    }

    /// The encoder used to map features into the hyperspace.
    pub fn encoder(&self) -> &SinusoidEncoder {
        &self.encoder
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &OnlineHdConfig {
        &self.config
    }

    /// Hyperspace dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.class_hvs.cols()
    }

    /// Per-class cosine similarities for an already-encoded hypervector.
    pub fn scores_encoded(&self, h: &[f32]) -> Vec<f32> {
        scores_unit_classes(&self.class_hvs, h)
    }

    /// Performs one *online* update with a freshly observed labeled sample —
    /// the single-pass adaptation OnlineHD is named for. On a
    /// misclassification the true class is pulled toward the sample and the
    /// confused class pushed away (the same rule as training), then the two
    /// touched class hypervectors are re-normalized. Returns the prediction
    /// made *before* the update, so callers can track streaming accuracy.
    ///
    /// This is the personalization hook for wearables: a deployed model
    /// adapts to its wearer without retraining from scratch.
    ///
    /// # Errors
    ///
    /// * [`BoostHdError::DataMismatch`] if `x` has the wrong feature count
    ///   or `y` is not one of the trained classes.
    pub fn update(&mut self, x: &[f32], y: usize) -> Result<usize> {
        if x.len() != self.encoder.input_len() {
            return Err(BoostHdError::DataMismatch {
                reason: format!(
                    "sample has {} features but the encoder expects {}",
                    x.len(),
                    self.encoder.input_len()
                ),
            });
        }
        if y >= self.num_classes {
            return Err(BoostHdError::DataMismatch {
                reason: format!("label {y} outside the {} trained classes", self.num_classes),
            });
        }
        let mut h = self.encoder.encode_row(x);
        let sims = scores_unit_classes(&self.class_hvs, &h);
        let pred = argmax(&sims);
        if pred != y {
            // The stored class hypervectors are unit-normalized, so the
            // sample is normalized too before bundling — otherwise a single
            // update (‖φ(x)‖ ≈ √(D/8)) would overwrite the class direction
            // instead of nudging it.
            hdc::ops::normalize_inplace(&mut h);
            let lr = self.config.lr;
            hdc::ops::bundle_into(self.class_hvs.row_mut(y), &h, lr * (1.0 - sims[y]));
            hdc::ops::bundle_into(self.class_hvs.row_mut(pred), &h, -lr * (1.0 - sims[pred]));
            hdc::ops::normalize_inplace(self.class_hvs.row_mut(y));
            hdc::ops::normalize_inplace(self.class_hvs.row_mut(pred));
        }
        Ok(pred)
    }

    /// Streams a batch of labeled samples through [`OnlineHd::update`],
    /// returning the *prequential* accuracy (each sample is predicted
    /// before the model learns from it).
    ///
    /// # Errors
    ///
    /// As [`OnlineHd::update`].
    pub fn update_batch(&mut self, x: &Matrix, y: &[usize]) -> Result<f64> {
        if x.rows() != y.len() {
            return Err(BoostHdError::DataMismatch {
                reason: format!("{} feature rows but {} labels", x.rows(), y.len()),
            });
        }
        if y.is_empty() {
            return Err(BoostHdError::DataMismatch {
                reason: "streaming update needs at least one sample".into(),
            });
        }
        let mut correct = 0usize;
        for (r, &label) in y.iter().enumerate() {
            if self.update(x.row(r), label)? == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / y.len() as f64)
    }

    /// Reassembles a model from its stored parts (the persistence path).
    pub(crate) fn from_parts(
        encoder: SinusoidEncoder,
        class_hvs: Matrix,
        num_classes: usize,
        config: OnlineHdConfig,
    ) -> Self {
        Self {
            encoder,
            class_hvs,
            num_classes,
            config,
        }
    }

    /// Quantizes the class hypervectors to bipolar `{−1, +1}` in place —
    /// the representation HDC accelerators store in 1-bit memories. Cosine
    /// scoring continues to work; accuracy typically drops by well under a
    /// point at experiment dimensionalities while the model shrinks 32×.
    pub fn quantize_bipolar(&mut self) {
        for r in 0..self.class_hvs.rows() {
            let row = self.class_hvs.row_mut(r);
            let q = hdc::ops::to_bipolar(row);
            row.copy_from_slice(&q);
            hdc::ops::normalize_inplace(row);
        }
    }

    /// Swaps the stored-projection encoder for its seed-recipe equivalent:
    /// the projection matrix is dropped and regenerated block-wise from
    /// `config.seed` on every encode (see
    /// [`SinusoidEncoder::try_new_remat`]). Encodings — and therefore
    /// predictions and persisted scores — are **bit-identical** to the
    /// stored path; what changes is the memory/persistence footprint
    /// (`D × F` f32 become a ~32-byte recipe) against recompute time.
    ///
    /// Only models trained through [`OnlineHd::fit`] /
    /// [`OnlineHd::fit_weighted`] qualify: their encoder draws are the
    /// first use of `Rng64::seed_from(config.seed)`, which is exactly the
    /// stream the recipe replays. The regenerated bias is compared
    /// bitwise against the stored one as an integrity check.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] when the stored encoder was
    /// not derived from `config.seed` (e.g. a hand-assembled model), and
    /// [`BoostHdError::InvalidConfig`] for degenerate shapes.
    pub fn rematerialize_encoder(&mut self) -> Result<()> {
        if self.encoder.is_rematerialized() {
            return Ok(());
        }
        let remat =
            SinusoidEncoder::try_new_remat(self.dim(), self.encoder.input_len(), self.config.seed)
                .map_err(BoostHdError::from)?;
        if remat.bias() != self.encoder.bias() {
            return Err(BoostHdError::DataMismatch {
                reason: "stored encoder does not match the seed recipe (bias mismatch)".into(),
            });
        }
        self.encoder = remat;
        Ok(())
    }
}

impl OnlineHd {
    /// Predicts every row of `x` using `threads` worker threads, each
    /// running the batched encode-GEMM + scoring path on a contiguous
    /// chunk. Identical to [`Classifier::predict_batch`] for any thread
    /// count.
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        crate::classifier::predict_batch_chunked(self, x, threads)
    }
}

impl Classifier for OnlineHd {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let h = self.encoder.encode_row(x);
        self.scores_encoded(&h)
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        chunked_unit_scores(&self.encoder, &self.class_hvs, x)
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.scores_batch(x))
    }
}

impl Perturbable for OnlineHd {
    fn param_buffers_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.class_hvs.as_mut_slice()]
    }
}

/// Validates feature/label/weight agreement shared by all HDC fits.
pub(crate) fn validate_training_inputs(
    x: &Matrix,
    y: &[usize],
    weights: Option<&[f64]>,
) -> Result<()> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(BoostHdError::DataMismatch {
            reason: "training data is empty".into(),
        });
    }
    if x.rows() != y.len() {
        return Err(BoostHdError::DataMismatch {
            reason: format!("{} feature rows but {} labels", x.rows(), y.len()),
        });
    }
    if let Some(w) = weights {
        if w.len() != y.len() {
            return Err(BoostHdError::DataMismatch {
                reason: format!("{} labels but {} weights", y.len(), w.len()),
            });
        }
        if w.iter().any(|&wi| wi < 0.0) || w.iter().sum::<f64>() <= 0.0 {
            return Err(BoostHdError::DataMismatch {
                reason: "sample weights must be non-negative with positive sum".into(),
            });
        }
    }
    Ok(())
}

/// Normalizes optional weights to mean 1 (so weighted updates reduce to the
/// unweighted rule under uniform weights).
pub(crate) fn normalize_weights(weights: Option<&[f64]>, n: usize) -> Vec<f32> {
    match weights {
        None => vec![1.0; n],
        Some(w) => {
            let total: f64 = w.iter().sum();
            let scale = n as f64 / total;
            w.iter().map(|&wi| (wi * scale) as f32).collect()
        }
    }
}

/// Normalizes every row of `m` to unit Euclidean norm (zero rows are left
/// untouched). Trained models store unit class hypervectors so inference
/// pays one dot product per class instead of a dot plus a norm.
pub(crate) fn normalize_rows(m: &mut Matrix) {
    linalg::kernels::normalize_rows(m);
}

/// Cosine similarities of `h` against *unit-norm* class hypervector rows:
/// `dot(c, h)/‖h‖`. Identical to [`scores_against`] when the rows have been
/// passed through [`normalize_rows`], at roughly half the cost.
pub(crate) fn scores_unit_classes(class_hvs: &Matrix, h: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; class_hvs.rows()];
    scores_unit_classes_into(class_hvs, h, &mut out);
    out
}

/// [`scores_unit_classes`] writing into a caller-owned buffer — one fused
/// kernel pass over the `K` class rows, no per-query allocation. The hot
/// form the training loops call.
pub(crate) fn scores_unit_classes_into(class_hvs: &Matrix, h: &[f32], out: &mut [f32]) {
    linalg::kernels::cosine_scores_into(class_hvs, h, norm(h), out);
}

/// Row-chunk width shared by every batched scoring path: large enough to
/// amortize the projection stream across a GEMM row block, small enough
/// that the encoded chunk (`score_chunk() × D` f32) stays cache-resident
/// instead of round-tripping a whole-batch hypervector matrix through
/// memory. Delegates to the startup autotuner ([`linalg::autotune`]);
/// pin with `HDC_NO_AUTOTUNE=1` for a fixed 256.
pub(crate) fn score_chunk() -> usize {
    linalg::autotune::score_chunk()
}

/// The fused batched scoring pipeline for single-matrix classifiers:
/// encode `x` in row chunks through a reused buffer, score each chunk
/// against the unit-norm class rows, and assemble the `samples × classes`
/// result. Row-identical to encoding and scoring one sample at a time.
pub(crate) fn chunked_unit_scores(
    encoder: &SinusoidEncoder,
    class_hvs: &Matrix,
    x: &Matrix,
) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), class_hvs.rows());
    let mut zbuf = Matrix::zeros(0, 0);
    let mut start = 0;
    while start < x.rows() {
        let end = (start + score_chunk()).min(x.rows());
        encoder.encode_batch_into(&x.slice_rows(start, end), &mut zbuf);
        let sims = scores_unit_classes_batch(class_hvs, &zbuf);
        for r in 0..sims.rows() {
            out.row_mut(start + r).copy_from_slice(sims.row(r));
        }
        start = end;
    }
    out
}

/// Batched [`scores_unit_classes`]: cosine similarities of every row of the
/// pre-encoded batch `z` against *unit-norm* class hypervector rows, as a
/// `samples × classes` matrix.
///
/// One tiled `Z · Cᵀ` product replaces the per-sample dot loops; every
/// entry is computed by the same [`dot`] as the row path (dot products
/// commute operand-wise lane by lane), so the rows equal the row-at-a-time
/// scores bit for bit.
pub(crate) fn scores_unit_classes_batch(class_hvs: &Matrix, z: &Matrix) -> Matrix {
    let mut sims = z.matmul_transposed(class_hvs);
    for r in 0..sims.rows() {
        let hn = norm(z.row(r));
        let row = sims.row_mut(r);
        if hn == 0.0 {
            row.fill(0.0);
        } else {
            for v in row.iter_mut() {
                *v = (*v / hn).clamp(-1.0, 1.0);
            }
        }
    }
    sims
}

/// Cosine similarities of `h` against every row of `class_hvs`.
///
/// General (norm-computing) variant kept as the reference implementation
/// for [`scores_unit_classes`]; production paths use the unit-class form.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn scores_against(class_hvs: &Matrix, h: &[f32]) -> Vec<f32> {
    let hn = norm(h);
    (0..class_hvs.rows())
        .map(|l| {
            let row = class_hvs.row(l);
            let cn = norm(row);
            if hn == 0.0 || cn == 0.0 {
                0.0
            } else {
                (dot(row, h) / (hn * cn)).clamp(-1.0, 1.0)
            }
        })
        .collect()
}

/// The OnlineHD training loop over *pre-encoded* samples. Shared by
/// [`OnlineHd`] (full hyperspace) and the BoostHD weak learners (dimension
/// slices).
///
/// The hot loop runs entirely on the dispatched SIMD kernels
/// ([`linalg::kernels`]): per-class bootstrap bundling (`axpy`, class-
/// parallel when the workload warrants it), a fused *K class rows vs one
/// sample* dot pass per refinement step, `axpy` pull/push updates, and
/// `norm2` refreshes for the two touched classes. All score and norm
/// scratch buffers are allocated once per fit and reused across every
/// sample and epoch.
pub(crate) fn train_class_hvs(
    z: &Matrix,
    y: &[usize],
    sample_scale: &[f32],
    num_classes: usize,
    lr: f32,
    epochs: usize,
    bootstrap: bool,
) -> Matrix {
    use linalg::kernels;

    let n = z.rows();
    let d = z.cols();
    let mut class_hvs = Matrix::zeros(num_classes, d);

    if bootstrap {
        bundle_classes(
            &mut class_hvs,
            z,
            y,
            sample_scale,
            bundling_threads(n, d, num_classes),
        );
    }

    // Cache class norms and sample norms: the inner loop is O(k·D) dots per
    // sample; norms would double that if recomputed every time.
    let mut class_norms: Vec<f32> = (0..num_classes)
        .map(|l| kernels::norm(class_hvs.row(l)))
        .collect();
    let sample_norms: Vec<f32> = (0..n).map(|i| kernels::norm(z.row(i))).collect();
    // One scores buffer for the whole fit instead of per-sample temporaries.
    let mut raw_dots = vec![0.0f32; num_classes];

    for _epoch in 0..epochs {
        for i in 0..n {
            let h = z.row(i);
            let hn = sample_norms[i];
            if hn == 0.0 {
                continue;
            }
            kernels::row_dots_into(&class_hvs, h, &mut raw_dots);
            let mut best = 0usize;
            let mut best_sim = f32::NEG_INFINITY;
            let mut true_sim = 0.0f32;
            for (l, (&raw, &cn)) in raw_dots.iter().zip(class_norms.iter()).enumerate() {
                let sim = if cn == 0.0 {
                    0.0
                } else {
                    (raw / (cn * hn)).clamp(-1.0, 1.0)
                };
                if sim > best_sim {
                    best_sim = sim;
                    best = l;
                }
                if l == y[i] {
                    true_sim = sim;
                }
            }
            if best != y[i] {
                let w = sample_scale[i];
                kernels::axpy(class_hvs.row_mut(y[i]), h, lr * (1.0 - true_sim) * w);
                kernels::axpy(class_hvs.row_mut(best), h, -lr * (1.0 - best_sim) * w);
                class_norms[y[i]] = kernels::norm(class_hvs.row(y[i]));
                class_norms[best] = kernels::norm(class_hvs.row(best));
            }
        }
    }
    class_hvs
}

/// Per-class bootstrap bundling: `class_hvs[y[i]] += scale[i] · z[i]` for
/// every sample, with the class rows split across `threads` workers.
///
/// Each worker owns a disjoint contiguous block of class rows and walks the
/// sample list, bundling only the samples of its classes — every class
/// still accumulates its samples in ascending order, so the result is
/// **bit-identical** to the serial loop for any thread count.
///
/// # Panics
///
/// Panics if `y`/`scale` lengths disagree with `z`, or any label is out of
/// range.
pub(crate) fn bundle_classes(
    class_hvs: &mut Matrix,
    z: &Matrix,
    y: &[usize],
    scale: &[f32],
    threads: usize,
) {
    assert_eq!(z.rows(), y.len(), "bundle label count mismatch");
    assert_eq!(z.rows(), scale.len(), "bundle scale count mismatch");
    let d = class_hvs.cols();
    let num_classes = class_hvs.rows();
    // Validate labels up front so the serial and class-parallel paths fail
    // identically (the parallel workers skip labels they don't own and
    // would otherwise drop an out-of-range sample silently).
    if let Some(&bad) = y.iter().find(|&&yi| yi >= num_classes) {
        panic!("bundle label {bad} outside the {num_classes} classes");
    }
    if threads <= 1 || num_classes <= 1 || d == 0 {
        for (i, &yi) in y.iter().enumerate() {
            linalg::kernels::axpy(class_hvs.row_mut(yi), z.row(i), scale[i]);
        }
        return;
    }
    let workers = threads.min(num_classes);
    let chunk = num_classes.div_ceil(workers);
    let mut rows: Vec<&mut [f32]> = class_hvs.as_mut_slice().chunks_mut(d).collect();
    std::thread::scope(|scope| {
        let mut rest = &mut rows[..];
        let mut class_base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let base = class_base;
            class_base += take;
            scope.spawn(move || {
                // One pass over the samples per worker: each owned class
                // still sees its samples in ascending order, so this is
                // bit-identical to the serial loop.
                let end = base + head.len();
                for (i, &yi) in y.iter().enumerate() {
                    if yi >= base && yi < end {
                        linalg::kernels::axpy(head[yi - base], z.row(i), scale[i]);
                    }
                }
            });
        }
    });
}

/// Worker count for [`bundle_classes`]: parallel only when the bundling
/// traffic is large enough to amortize thread spawn (results are
/// bit-identical either way, so the threshold is purely a performance
/// knob).
pub(crate) fn bundling_threads(n: usize, d: usize, num_classes: usize) -> usize {
    const MIN_PARALLEL_ELEMENTS: usize = 1 << 21;
    if num_classes < 2 || n.saturating_mul(d) < MIN_PARALLEL_ELEMENTS {
        1
    } else {
        crate::parallel::default_threads().min(num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -1.5 } else { 1.5 };
            rows.push(vec![
                c + 0.4 * rng.normal(),
                c + 0.4 * rng.normal(),
                0.4 * rng.normal(),
            ]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn three_blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(seed);
        let centers = [(-2.0, 0.0), (2.0, 0.0), (0.0, 2.5)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = centers[class];
            rows.push(vec![cx + 0.5 * rng.normal(), cy + 0.5 * rng.normal()]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn accuracy(model: &impl Classifier, x: &Matrix, y: &[usize]) -> f64 {
        let preds = model.predict_batch(x);
        preds.iter().zip(y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
    }

    fn small_config() -> OnlineHdConfig {
        OnlineHdConfig {
            dim: 512,
            epochs: 10,
            ..OnlineHdConfig::default()
        }
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(200, 1);
        let model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        assert!(accuracy(&model, &x, &y) > 0.97);
    }

    #[test]
    fn learns_three_classes() {
        let (x, y) = three_blobs(240, 2);
        let model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        assert_eq!(model.num_classes(), 3);
        assert!(accuracy(&model, &x, &y) > 0.95);
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (xtr, ytr) = blobs(300, 3);
        let (xte, yte) = blobs(100, 99);
        let model = OnlineHd::fit(&small_config(), &xtr, &ytr).unwrap();
        assert!(accuracy(&model, &xte, &yte) > 0.9);
    }

    #[test]
    fn predict_batch_matches_rowwise_predict() {
        let (x, y) = blobs(60, 4);
        let model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        let batch = model.predict_batch(&x);
        let rowwise: Vec<usize> = (0..x.rows()).map(|r| model.predict(x.row(r))).collect();
        assert_eq!(batch, rowwise);
    }

    #[test]
    fn scores_have_class_count_length() {
        let (x, y) = three_blobs(90, 5);
        let model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        assert_eq!(model.scores(x.row(0)).len(), 3);
    }

    #[test]
    fn refinement_improves_on_pure_bundling() {
        // Overlapping blobs: plain bundling struggles, refinement helps.
        let mut rng = Rng64::seed_from(6);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let class = i % 2;
            let c = if class == 0 { -0.4 } else { 0.4 };
            rows.push(vec![c + rng.normal(), c + rng.normal()]);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let no_refine = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 1024,
                epochs: 0,
                ..OnlineHdConfig::default()
            },
            &x,
            &labels,
        )
        .unwrap();
        let refined = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 1024,
                epochs: 20,
                ..OnlineHdConfig::default()
            },
            &x,
            &labels,
        )
        .unwrap();
        let a0 = accuracy(&no_refine, &x, &labels);
        let a1 = accuracy(&refined, &x, &labels);
        // Allow a whisker of seed noise; refinement must not collapse and
        // generally matches or improves the bundled model.
        assert!(
            a1 >= a0 - 0.02,
            "refined {a1} should not be clearly worse than bundled {a0}"
        );
    }

    #[test]
    fn weighted_fit_biases_toward_heavy_samples() {
        // Weight class 1 samples 50×: the model should nail class 1 even in
        // an overlapping region.
        let mut rng = Rng64::seed_from(7);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let class = i % 2;
            let c = if class == 0 { -0.3 } else { 0.3 };
            rows.push(vec![c + 0.8 * rng.normal(), c + 0.8 * rng.normal()]);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let weights: Vec<f64> = labels
            .iter()
            .map(|&y| if y == 1 { 50.0 } else { 1.0 })
            .collect();
        let model = OnlineHd::fit_weighted(&small_config(), &x, &labels, Some(&weights)).unwrap();
        let preds = model.predict_batch(&x);
        let recall_1 = preds
            .iter()
            .zip(&labels)
            .filter(|(_, &t)| t == 1)
            .filter(|(p, t)| p == t)
            .count() as f64
            / labels.iter().filter(|&&t| t == 1).count() as f64;
        let recall_0 = preds
            .iter()
            .zip(&labels)
            .filter(|(_, &t)| t == 0)
            .filter(|(p, t)| p == t)
            .count() as f64
            / labels.iter().filter(|&&t| t == 0).count() as f64;
        assert!(
            recall_1 > recall_0,
            "heavy class recall {recall_1} vs {recall_0}"
        );
    }

    #[test]
    fn same_seed_reproduces_model() {
        let (x, y) = blobs(80, 8);
        let a = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        let b = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        assert_eq!(a.class_hypervectors(), b.class_hypervectors());
    }

    #[test]
    fn empty_data_rejected() {
        let x = Matrix::zeros(0, 3);
        let err = OnlineHd::fit(&small_config(), &x, &[]).unwrap_err();
        assert!(matches!(err, BoostHdError::DataMismatch { .. }));
    }

    #[test]
    fn label_count_mismatch_rejected() {
        let (x, _) = blobs(10, 9);
        let err = OnlineHd::fit(&small_config(), &x, &[0, 1]).unwrap_err();
        assert!(matches!(err, BoostHdError::DataMismatch { .. }));
    }

    #[test]
    fn bad_weights_rejected() {
        let (x, y) = blobs(10, 10);
        let w = vec![-1.0; 10];
        assert!(OnlineHd::fit_weighted(&small_config(), &x, &y, Some(&w)).is_err());
        let w = vec![0.0; 10];
        assert!(OnlineHd::fit_weighted(&small_config(), &x, &y, Some(&w)).is_err());
    }

    #[test]
    fn zero_lr_rejected() {
        let (x, y) = blobs(10, 11);
        let config = OnlineHdConfig {
            lr: 0.0,
            ..small_config()
        };
        assert!(matches!(
            OnlineHd::fit(&config, &x, &y),
            Err(BoostHdError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn perturbable_exposes_class_hvs() {
        let (x, y) = blobs(40, 12);
        let mut model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        let count = model.param_count();
        assert_eq!(count, 2 * 512);
    }

    #[test]
    fn streaming_update_adapts_to_shifted_distribution() {
        // Train on one blob geometry, then stream samples from a shifted
        // one: prequential accuracy over the late stream should beat the
        // frozen model's accuracy on the same data.
        let (xtr, ytr) = blobs(200, 30);
        let mut model = OnlineHd::fit(&small_config(), &xtr, &ytr).unwrap();
        let frozen = model.clone();
        // Shifted distribution: same labels, centers moved.
        let mut rng = Rng64::seed_from(31);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let class = i % 2;
            let c = if class == 0 { -0.2 } else { 2.8 }; // shifted from ±1.5
            rows.push(vec![
                c + 0.4 * rng.normal(),
                c + 0.4 * rng.normal(),
                0.4 * rng.normal(),
            ]);
            labels.push(class);
        }
        let xs = Matrix::from_rows(&rows).unwrap();
        model.update_batch(&xs, &labels).unwrap();
        let adapted_acc = accuracy(&model, &xs, &labels);
        let frozen_acc = accuracy(&frozen, &xs, &labels);
        assert!(
            adapted_acc > frozen_acc,
            "adapted {adapted_acc} should beat frozen {frozen_acc}"
        );
    }

    #[test]
    fn update_returns_pre_update_prediction() {
        let (x, y) = blobs(100, 32);
        let mut model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        let before = model.predict(x.row(0));
        let returned = model.update(x.row(0), y[0]).unwrap();
        assert_eq!(before, returned);
    }

    #[test]
    fn update_rejects_bad_inputs() {
        let (x, y) = blobs(50, 33);
        let mut model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        assert!(model.update(&[0.0; 7], 0).is_err(), "wrong feature count");
        assert!(model.update(x.row(0), 99).is_err(), "unknown class");
        let empty = Matrix::zeros(0, 3);
        assert!(model.update_batch(&empty, &[]).is_err());
    }

    #[test]
    fn correct_prediction_leaves_model_unchanged() {
        let (x, y) = blobs(100, 34);
        let mut model = OnlineHd::fit(&small_config(), &x, &y).unwrap();
        // Find a correctly classified sample.
        let idx = (0..x.rows())
            .find(|&r| model.predict(x.row(r)) == y[r])
            .expect("some sample is classified correctly");
        let before = model.class_hypervectors().clone();
        model.update(x.row(idx), y[idx]).unwrap();
        assert_eq!(&before, model.class_hypervectors());
    }

    #[test]
    fn bipolar_quantization_keeps_most_accuracy() {
        let (x, y) = blobs(200, 35);
        let mut model = OnlineHd::fit(
            &OnlineHdConfig {
                dim: 2048,
                epochs: 10,
                ..OnlineHdConfig::default()
            },
            &x,
            &y,
        )
        .unwrap();
        let full_acc = accuracy(&model, &x, &y);
        model.quantize_bipolar();
        // Every stored component is now ±1/√D.
        let d = model.dim();
        let expected = 1.0 / (d as f32).sqrt();
        for v in model.class_hypervectors().as_slice() {
            assert!((v.abs() - expected).abs() < 1e-5);
        }
        let quant_acc = accuracy(&model, &x, &y);
        assert!(
            quant_acc > full_acc - 0.05,
            "bipolar {quant_acc} vs full {full_acc}"
        );
    }

    #[test]
    fn unit_class_scorer_matches_general_scorer_after_normalization() {
        let mut rng = Rng64::seed_from(21);
        let mut class_hvs = Matrix::random_normal(4, 64, &mut rng);
        let h: Vec<f32> = (0..64).map(|_| rng.normal()).collect();
        let general = scores_against(&class_hvs, &h);
        normalize_rows(&mut class_hvs);
        let fast = scores_unit_classes(&class_hvs, &h);
        for (a, b) in general.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn normalize_weights_uniform_gives_ones() {
        let w = normalize_weights(None, 4);
        assert_eq!(w, vec![1.0; 4]);
        let w = normalize_weights(Some(&[0.25, 0.25, 0.25, 0.25]), 4);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn parallel_class_bundling_is_bit_identical_to_serial() {
        let mut rng = Rng64::seed_from(40);
        let z = Matrix::random_normal(120, 96, &mut rng);
        let y: Vec<usize> = (0..120).map(|i| i % 5).collect();
        let scale: Vec<f32> = (0..120).map(|i| 0.5 + (i % 7) as f32 * 0.25).collect();
        let mut serial = Matrix::zeros(5, 96);
        bundle_classes(&mut serial, &z, &y, &scale, 1);
        for threads in [2usize, 3, 5, 8] {
            let mut parallel = Matrix::zeros(5, 96);
            bundle_classes(&mut parallel, &z, &y, &scale, threads);
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn normalize_weights_preserves_ratios() {
        let w = normalize_weights(Some(&[1.0, 3.0]), 2);
        assert!((w[1] / w[0] - 3.0).abs() < 1e-5);
        assert!((w.iter().sum::<f32>() - 2.0).abs() < 1e-5);
    }
}
