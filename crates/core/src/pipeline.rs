//! The [`Pipeline`] facade: config-driven training, confidence-aware
//! prediction, and one persistence envelope for every model family.
//!
//! The reproduction used to expose one bespoke config struct and ad-hoc
//! `fit`/`to_bytes` pair per model; a caller wiring a healthcare
//! deployment had to know five APIs and two blob formats. This module is
//! the single front door the ROADMAP's "architecture that enables all
//! three" step asks for:
//!
//! * [`Pipeline::fit`] turns a declarative [`ModelSpec`] into a trained
//!   model ([`Box<dyn Model>`] under the hood) — every family in the
//!   evaluation, HDC and classical, through one call;
//! * [`Pipeline::predict_with_confidence`] returns normalized per-class
//!   probabilities, the top-two margin, and an abstention flag driven by a
//!   configurable threshold — the "how sure are we?" signal an
//!   abstain/escalate clinical workflow gates on (the paper's reliability
//!   argument made operational);
//! * [`Pipeline::save`]/[`Pipeline::load`] wrap the per-model binary
//!   codecs in one versioned envelope that also records the spec, so a
//!   deployed artifact knows how to rebuild and re-evaluate itself.
//!
//! # Example
//!
//! ```
//! use boosthd::{ModelSpec, OnlineHdConfig, Pipeline};
//! use linalg::{Matrix, Rng64};
//!
//! let mut rng = Rng64::seed_from(9);
//! let x = Matrix::random_normal(60, 3, &mut rng);
//! let y: Vec<usize> = (0..60).map(|i| i % 2).collect();
//!
//! let spec = ModelSpec::OnlineHd(OnlineHdConfig { dim: 128, epochs: 3, ..Default::default() });
//! let pipeline = Pipeline::fit(&spec, &x, &y)?.with_abstain_threshold(0.55);
//!
//! let p = pipeline.predict_with_confidence(x.row(0));
//! assert!((0.0..=1.0).contains(&p.confidence));
//! assert_eq!(p.probabilities.len(), 2);
//!
//! // One envelope for every family: save, load, identical predictions.
//! let bytes = pipeline.to_bytes()?;
//! let restored = Pipeline::from_bytes(&bytes)?;
//! assert_eq!(pipeline.predict_batch(&x), restored.predict_batch(&x));
//! assert_eq!(restored.spec(), pipeline.spec());
//! # Ok::<(), boosthd::BoostHdError>(())
//! ```

use std::any::Any;
use std::sync::Mutex;

use crate::boost::BoostHd;
use crate::centroid::CentroidHd;
use crate::classifier::{argmax, predict_batch_chunked, Classifier};
use crate::error::{BoostHdError, Result};
use crate::online::OnlineHd;
use crate::persist::{Reader, Writer};
use crate::quantized::{QuantizedBoostHd, QuantizedHd};
use crate::quantized_i8::{QuantizedI8BoostHd, QuantizedI8Hd};
use crate::spec::{BaselineSpec, ModelSpec};
use faults::BitflipReport;
use linalg::autotune::{Tuning, TuningSource};
use linalg::{Blob, Matrix, Rng64};
use std::sync::Arc;

fn pipeline_err(reason: impl Into<String>) -> BoostHdError {
    BoostHdError::DataMismatch {
        reason: reason.into(),
    }
}

/// Which binary payload codec a [`Model`] serializes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Dense-f32 OnlineHD ([`OnlineHd::to_bytes`]).
    OnlineHd,
    /// Dense-f32 centroid model ([`CentroidHd::to_bytes`]).
    CentroidHd,
    /// Dense-f32 boosted ensemble ([`BoostHd::to_bytes`]).
    BoostHd,
    /// Bitpacked single-learner model ([`QuantizedHd::to_bytes`]).
    QuantizedHd,
    /// Bitpacked boosted ensemble ([`QuantizedBoostHd::to_bytes`]).
    QuantizedBoostHd,
    /// Int8 single-learner model ([`QuantizedI8Hd::to_bytes`]).
    QuantizedI8Hd,
    /// Int8 boosted ensemble ([`QuantizedI8BoostHd::to_bytes`]).
    QuantizedI8BoostHd,
    /// No binary codec (the classical baselines); saving reports a clear
    /// error instead of writing an unreadable blob.
    Unsupported,
}

impl PayloadKind {
    fn tag(self) -> u8 {
        match self {
            PayloadKind::Unsupported => 0,
            PayloadKind::OnlineHd => 1,
            PayloadKind::CentroidHd => 2,
            PayloadKind::BoostHd => 3,
            PayloadKind::QuantizedHd => 4,
            PayloadKind::QuantizedBoostHd => 5,
            PayloadKind::QuantizedI8Hd => 6,
            PayloadKind::QuantizedI8BoostHd => 7,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => PayloadKind::Unsupported,
            1 => PayloadKind::OnlineHd,
            2 => PayloadKind::CentroidHd,
            3 => PayloadKind::BoostHd,
            4 => PayloadKind::QuantizedHd,
            5 => PayloadKind::QuantizedBoostHd,
            6 => PayloadKind::QuantizedI8Hd,
            7 => PayloadKind::QuantizedI8BoostHd,
            other => return Err(pipeline_err(format!("unknown payload kind {other}"))),
        })
    }
}

/// A trained model behind the [`Pipeline`] facade: classification plus the
/// persistence hooks the envelope needs, object-safe so heterogeneous
/// model zoos are `Vec<Pipeline>` instead of bespoke enums.
///
/// Implemented by the five HDC models here and by the classical baselines
/// in the `baselines` crate.
pub trait Model: Classifier + Send + Sync {
    /// Which binary codec [`Model::to_payload`] writes.
    fn payload_kind(&self) -> PayloadKind;

    /// Clones the trained model behind the trait object (fault-injection
    /// campaigns corrupt a fresh clone per trial; `Box<dyn Model>` cannot
    /// derive `Clone`).
    fn clone_box(&self) -> Box<dyn Model>;

    /// Flips each stored parameter bit independently with probability
    /// `p_b`, drawing flip positions from `rng` — the memory-fault model
    /// of the paper's Section IV-D. Dense-f32 families take IEEE-754 word
    /// flips ([`faults::flip_bits`]); bitpacked families take sign-bit
    /// flips ([`faults::flip_sign_bits`]).
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for families that expose no
    /// parameter storage (the tree-based baselines).
    fn inject_bitflips(&mut self, p_b: f64, rng: &mut Rng64) -> Result<BitflipReport>;

    /// Serializes the model through its binary codec.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for families without a
    /// codec ([`PayloadKind::Unsupported`]).
    fn to_payload(&self) -> Result<Vec<u8>>;

    /// Writes the model's full blob through `w` — with a heap-mode writer
    /// this is the fleet store's record body, splitting bulk arrays into
    /// the zero-copy payload heap.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for families without a
    /// codec (the default implementation).
    fn encode_store(&self, w: &mut Writer) -> Result<()> {
        let _ = w;
        Err(BoostHdError::InvalidConfig {
            reason: "model family has no binary codec; only the HDC models persist".into(),
        })
    }

    /// Upcast for concrete-type escape hatches ([`Pipeline::downcast_ref`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast ([`Pipeline::downcast_mut`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

macro_rules! impl_hdc_model {
    ($ty:ty, $kind:expr, $inject:path) => {
        impl Model for $ty {
            fn payload_kind(&self) -> PayloadKind {
                $kind
            }
            fn clone_box(&self) -> Box<dyn Model> {
                Box::new(self.clone())
            }
            fn inject_bitflips(&mut self, p_b: f64, rng: &mut Rng64) -> Result<BitflipReport> {
                Ok($inject(self, p_b, rng))
            }
            fn to_payload(&self) -> Result<Vec<u8>> {
                Ok(self.to_bytes())
            }
            fn encode_store(&self, w: &mut Writer) -> Result<()> {
                self.encode_into(w);
                Ok(())
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
    };
}

impl_hdc_model!(OnlineHd, PayloadKind::OnlineHd, faults::flip_bits);
impl_hdc_model!(CentroidHd, PayloadKind::CentroidHd, faults::flip_bits);
impl_hdc_model!(BoostHd, PayloadKind::BoostHd, faults::flip_bits);
impl_hdc_model!(
    QuantizedHd,
    PayloadKind::QuantizedHd,
    faults::flip_sign_bits
);
impl_hdc_model!(
    QuantizedBoostHd,
    PayloadKind::QuantizedBoostHd,
    faults::flip_sign_bits
);
impl_hdc_model!(
    QuantizedI8Hd,
    PayloadKind::QuantizedI8Hd,
    crate::quantized_i8::flip_hd_i8_bits
);
impl_hdc_model!(
    QuantizedI8BoostHd,
    PayloadKind::QuantizedI8BoostHd,
    crate::quantized_i8::flip_boost_i8_bits
);

/// Builder the `baselines` crate registers so [`Pipeline::fit`] can
/// construct [`ModelSpec::Baseline`] models without a dependency cycle
/// (`baselines` depends on this crate for the [`Classifier`] trait).
pub type BaselineBuilder = fn(&BaselineSpec, &Matrix, &[usize]) -> Result<Box<dyn Model>>;

static BASELINE_BUILDER: Mutex<Option<BaselineBuilder>> = Mutex::new(None);

/// Registers the process-wide baseline builder (idempotent; the last
/// registration wins). Call `baselines::spec::install()` rather than this
/// directly.
pub fn register_baseline_builder(builder: BaselineBuilder) {
    *BASELINE_BUILDER
        .lock()
        .expect("baseline builder lock poisoned") = Some(builder);
}

fn baseline_builder() -> Result<BaselineBuilder> {
    BASELINE_BUILDER
        .lock()
        .expect("baseline builder lock poisoned")
        .ok_or_else(|| BoostHdError::InvalidConfig {
            reason: "no baseline builder registered — call baselines::spec::install() \
                     before fitting ModelSpec::Baseline"
                .into(),
        })
}

/// Softmax-normalized per-class probabilities for one score row.
///
/// Model score scales differ (cosine similarities, `α`-weighted votes,
/// margins, log-odds); the softmax puts them all on one `[0, 1]`,
/// sums-to-one scale whose argmax agrees with the raw scores. Non-finite
/// scores carry no evidence and map to probability 0; a row with no finite
/// score at all returns all zeros (so downstream confidence gating
/// abstains instead of trusting garbage).
pub fn normalized_probabilities(scores: &[f32]) -> Vec<f32> {
    let max = scores
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return vec![0.0; scores.len()];
    }
    let exps: Vec<f32> = scores
        .iter()
        .map(|&s| if s.is_finite() { (s - max).exp() } else { 0.0 })
        .collect();
    let sum: f32 = exps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![0.0; scores.len()];
    }
    exps.iter().map(|e| (e / sum).clamp(0.0, 1.0)).collect()
}

/// One confidence-aware prediction; see
/// [`Pipeline::predict_with_confidence`].
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The predicted class (argmax of the raw scores).
    pub class: usize,
    /// Probability of the predicted class, in `[0, 1]` (0 when the score
    /// row carried no finite evidence).
    pub confidence: f32,
    /// Top-1 minus top-2 probability, in `[0, 1]` — the separation signal
    /// the reliability literature gates on.
    pub margin: f32,
    /// Softmax-normalized per-class probabilities
    /// ([`normalized_probabilities`]).
    pub probabilities: Vec<f32>,
    /// Whether the confidence fell below the pipeline's abstention
    /// threshold.
    pub abstained: bool,
}

impl Prediction {
    /// The gated decision: `Some(class)` when confident enough, `None`
    /// when the pipeline abstained (escalate to a clinician / stronger
    /// model).
    pub fn decision(&self) -> Option<usize> {
        if self.abstained {
            None
        } else {
            Some(self.class)
        }
    }
}

/// `"BHDP"` little-endian — the envelope magic (distinct from the inner
/// model-blob magic so the two layers cannot be confused).
const ENVELOPE_MAGIC: u32 = 0x5044_4842;
/// Envelope version history:
///
/// * v1 — magic, version, kind, abstain threshold, spec TOML, payload.
/// * v2 — inserts the save-time kernel-tuning record
///   (`score_chunk: u32`, `threads: u32`, [`TuningSource`] tag) after the
///   abstain threshold, and assigns payload kinds 6/7 to the int8 tier.
///   Tuning is diagnostic provenance only — predictions never depend on
///   it — so loading replays nothing; v1 blobs read back with no record.
const ENVELOPE_VERSION: u8 = 2;
const ENVELOPE_MIN_VERSION: u8 = 1;

/// The unified model facade; see the [module docs](self).
pub struct Pipeline {
    spec: ModelSpec,
    model: Box<dyn Model>,
    abstain_threshold: f32,
    saved_tuning: Option<Tuning>,
}

impl Clone for Pipeline {
    fn clone(&self) -> Self {
        Self {
            spec: self.spec.clone(),
            model: self.model.clone_box(),
            abstain_threshold: self.abstain_threshold,
            saved_tuning: self.saved_tuning,
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec)
            .field("abstain_threshold", &self.abstain_threshold)
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Trains the model `spec` describes on feature rows `x` with labels
    /// `y` — the one construction path every experiment binary, example,
    /// and deployment goes through.
    ///
    /// # Errors
    ///
    /// * [`BoostHdError::InvalidConfig`] for invalid hyperparameters, a
    ///   garbage `HDC_THREADS`/`HDC_FORCE_SCALAR` environment value, or an
    ///   unregistered baseline builder;
    /// * [`BoostHdError::DataMismatch`] for inconsistent training data.
    pub fn fit(spec: &ModelSpec, x: &Matrix, y: &[usize]) -> Result<Self> {
        crate::parallel::validate_runtime_env()?;
        let model: Box<dyn Model> = match spec {
            ModelSpec::OnlineHd(c) => Box::new(OnlineHd::fit(c, x, y)?),
            ModelSpec::CentroidHd(c) => Box::new(CentroidHd::fit(c, x, y)?),
            ModelSpec::BoostHd(c) => Box::new(BoostHd::fit(c, x, y)?),
            ModelSpec::QuantizedOnlineHd { base, refit_epochs } => {
                let dense = OnlineHd::fit(base, x, y)?;
                Box::new(if *refit_epochs == 0 {
                    dense.quantize()
                } else {
                    dense.quantize_with_refit(x, y, *refit_epochs)?
                })
            }
            ModelSpec::QuantizedBoostHd { base, refit_epochs } => {
                let dense = BoostHd::fit(base, x, y)?;
                Box::new(if *refit_epochs == 0 {
                    dense.quantize()
                } else {
                    dense.quantize_with_refit(x, y, *refit_epochs)?
                })
            }
            ModelSpec::QuantizedI8OnlineHd { base, refit_epochs } => {
                let dense = OnlineHd::fit(base, x, y)?;
                Box::new(if *refit_epochs == 0 {
                    dense.quantize_i8()
                } else {
                    dense.quantize_i8_with_refit(x, y, *refit_epochs)?
                })
            }
            ModelSpec::QuantizedI8BoostHd { base, refit_epochs } => {
                let dense = BoostHd::fit(base, x, y)?;
                Box::new(if *refit_epochs == 0 {
                    dense.quantize_i8()
                } else {
                    dense.quantize_i8_with_refit(x, y, *refit_epochs)?
                })
            }
            ModelSpec::Baseline(b) => baseline_builder()?(b, x, y)?,
        };
        Ok(Self {
            spec: spec.clone(),
            model,
            abstain_threshold: 0.0,
            saved_tuning: None,
        })
    }

    /// Wraps an already-trained model with its spec (the load path, and
    /// the escape hatch for models trained outside the facade).
    pub fn from_model(spec: ModelSpec, model: Box<dyn Model>) -> Self {
        Self {
            spec,
            model,
            abstain_threshold: 0.0,
            saved_tuning: None,
        }
    }

    /// The kernel-tuning record the envelope this pipeline was loaded from
    /// carried (the [`linalg::autotune`] result of the machine that saved
    /// it) — provenance for performance triage, never an input to
    /// prediction. `None` for freshly-fit pipelines and v1 envelopes.
    pub fn saved_tuning(&self) -> Option<Tuning> {
        self.saved_tuning
    }

    /// The spec the model was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The trained model behind the facade.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// Concrete-type view of the trained model, when the caller knows the
    /// family (fault-injection sweeps cloning the model, streaming updates
    /// on [`OnlineHd`], ...).
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.model.as_any().downcast_ref::<T>()
    }

    /// Mutable concrete-type view ([`Pipeline::downcast_ref`]).
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.model.as_any_mut().downcast_mut::<T>()
    }

    /// Flips stored parameter bits of the model behind the facade with
    /// per-bit probability `p_b` — memory-fault injection without
    /// downcasting to the concrete family (see
    /// [`Model::inject_bitflips`]). The campaign engine clones a pipeline
    /// and corrupts the clone, one trial at a time.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for families that expose no
    /// parameter storage.
    pub fn inject_bitflips(&mut self, p_b: f64, rng: &mut Rng64) -> Result<BitflipReport> {
        self.model.inject_bitflips(p_b, rng)
    }

    /// Sets the abstention threshold: predictions whose confidence falls
    /// below it report `abstained = true`. `0.0` (the default) never
    /// abstains. Returns `self` for chaining.
    pub fn with_abstain_threshold(mut self, threshold: f32) -> Self {
        self.set_abstain_threshold(threshold);
        self
    }

    /// In-place [`Pipeline::with_abstain_threshold`].
    pub fn set_abstain_threshold(&mut self, threshold: f32) {
        self.abstain_threshold = threshold.clamp(0.0, 1.0);
    }

    /// The active abstention threshold.
    pub fn abstain_threshold(&self) -> f32 {
        self.abstain_threshold
    }

    /// Predicted class for one feature vector (ungated; see
    /// [`Pipeline::predict_with_confidence`] for the reliability-aware
    /// form).
    pub fn predict(&self, x: &[f32]) -> usize {
        self.model.predict(x)
    }

    /// Predicted classes for every row of `x`, through the model's batched
    /// path.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        self.model.predict_batch(x)
    }

    /// [`Pipeline::predict_batch`] fanned out over `threads` scoped worker
    /// threads (identical results for any thread count).
    pub fn predict_batch_parallel(&self, x: &Matrix, threads: usize) -> Vec<usize> {
        predict_batch_chunked(self, x, threads)
    }

    fn prediction_from_scores(&self, scores: &[f32]) -> Prediction {
        let probabilities = normalized_probabilities(scores);
        let class = argmax(scores);
        let mut top = 0.0f32;
        let mut second = 0.0f32;
        for &p in &probabilities {
            if p > top {
                second = top;
                top = p;
            } else if p > second {
                second = p;
            }
        }
        let confidence = probabilities.get(class).copied().unwrap_or(0.0);
        Prediction {
            class,
            confidence,
            margin: (top - second).clamp(0.0, 1.0),
            probabilities,
            abstained: self.abstain_threshold > 0.0 && confidence < self.abstain_threshold,
        }
    }

    /// Confidence-aware prediction for one feature vector: normalized
    /// per-class probabilities, top-two margin, and the abstention flag
    /// (see [`Prediction`]).
    pub fn predict_with_confidence(&self, x: &[f32]) -> Prediction {
        self.prediction_from_scores(&self.model.scores(x))
    }

    /// Confidence-aware predictions for every row of `x`, through the
    /// model's batched scoring path (row-identical to the single-sample
    /// form).
    pub fn predict_batch_with_confidence(&self, x: &Matrix) -> Vec<Prediction> {
        let scores = self.model.scores_batch(x);
        (0..scores.rows())
            .map(|r| self.prediction_from_scores(scores.row(r)))
            .collect()
    }

    /// [`Pipeline::predict_batch_with_confidence`] fanned out over
    /// `threads` contiguous row chunks on the chosen execution backend —
    /// the network serving flush primitive. Scoring is row-independent, so
    /// the result is identical to the single-threaded form for any thread
    /// count and either backend.
    pub fn predict_batch_with_confidence_chunked(
        &self,
        x: &Matrix,
        threads: usize,
        backend: crate::parallel::ExecBackend,
    ) -> Vec<Prediction> {
        let rows = x.rows();
        let workers = threads.clamp(1, rows.max(1));
        if workers <= 1 {
            return self.predict_batch_with_confidence(x);
        }
        crate::parallel::parallel_map_indices_with(backend, workers, workers, |w| {
            let (start, end) = crate::parallel::chunk_bounds(rows, workers, w);
            self.predict_batch_with_confidence(&x.slice_rows(start, end))
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Serializes the pipeline — spec, abstention threshold, and model
    /// payload — into the versioned envelope.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for families without a
    /// binary codec (the classical baselines).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let kind = self.model.payload_kind();
        if kind == PayloadKind::Unsupported {
            return Err(BoostHdError::InvalidConfig {
                reason: format!(
                    "model family `{}` has no binary codec; only the HDC models persist",
                    self.spec.display_name()
                ),
            });
        }
        let payload = self.model.to_payload()?;
        let spec_toml = self.spec.to_toml();
        let tuning = linalg::autotune::tuning();
        let mut w = Writer::new();
        w.put_u32(ENVELOPE_MAGIC);
        w.put_u8(ENVELOPE_VERSION);
        w.put_u8(kind.tag());
        w.put_f32(self.abstain_threshold);
        w.put_u32(tuning.score_chunk as u32);
        w.put_u32(tuning.threads as u32);
        w.put_u8(tuning.source.tag());
        w.put_u64(spec_toml.len() as u64);
        for &b in spec_toml.as_bytes() {
            w.put_u8(b);
        }
        w.put_u64(payload.len() as u64);
        for &b in &payload {
            w.put_u8(b);
        }
        Ok(w.into_bytes())
    }

    /// Deserializes an envelope written by [`Pipeline::to_bytes`],
    /// restoring the spec, abstention threshold, and model.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated or corrupt
    /// envelopes, and [`BoostHdError::InvalidConfig`] when the embedded
    /// spec disagrees with the payload kind.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.get_u32()? != ENVELOPE_MAGIC {
            return Err(pipeline_err("not a pipeline envelope (bad magic)"));
        }
        let version = r.get_u8()?;
        if !(ENVELOPE_MIN_VERSION..=ENVELOPE_VERSION).contains(&version) {
            return Err(pipeline_err(format!(
                "unsupported envelope version {version} (supported \
                 {ENVELOPE_MIN_VERSION}..={ENVELOPE_VERSION})"
            )));
        }
        let kind = PayloadKind::from_tag(r.get_u8()?)?;
        let abstain_threshold = r.get_f32()?;
        let saved_tuning = if version >= 2 {
            let score_chunk = r.get_u32()? as usize;
            let threads = r.get_u32()? as usize;
            let source = TuningSource::from_tag(r.get_u8()?)
                .ok_or_else(|| pipeline_err("unknown tuning-source tag in envelope"))?;
            Some(Tuning {
                score_chunk,
                threads,
                source,
            })
        } else {
            None
        };
        // Both counted sections validate their length prefix against the
        // bytes actually present before any allocation, so a corrupted
        // prefix fails descriptively instead of aborting on a huge
        // reserve.
        let spec_len = r.get_len()?;
        let spec_bytes = r.get_bytes(spec_len, "envelope spec")?;
        let spec_toml = std::str::from_utf8(spec_bytes)
            .map_err(|_| pipeline_err("envelope spec is not valid UTF-8"))?;
        let spec = ModelSpec::from_toml_str(spec_toml)?;
        if expected_payload_kind(&spec) != kind {
            return Err(BoostHdError::InvalidConfig {
                reason: format!(
                    "envelope payload kind disagrees with its spec (`{}`)",
                    spec.kind_tag()
                ),
            });
        }
        let payload_len = r.get_len()?;
        let payload = r.get_bytes(payload_len, "envelope payload")?;
        if !r.is_exhausted() {
            return Err(pipeline_err("trailing bytes after pipeline envelope"));
        }
        let model: Box<dyn Model> = match kind {
            PayloadKind::OnlineHd => Box::new(OnlineHd::from_bytes(payload)?),
            PayloadKind::CentroidHd => Box::new(CentroidHd::from_bytes(payload)?),
            PayloadKind::BoostHd => Box::new(BoostHd::from_bytes(payload)?),
            PayloadKind::QuantizedHd => Box::new(QuantizedHd::from_bytes(payload)?),
            PayloadKind::QuantizedBoostHd => Box::new(QuantizedBoostHd::from_bytes(payload)?),
            PayloadKind::QuantizedI8Hd => Box::new(QuantizedI8Hd::from_bytes(payload)?),
            PayloadKind::QuantizedI8BoostHd => Box::new(QuantizedI8BoostHd::from_bytes(payload)?),
            PayloadKind::Unsupported => {
                return Err(pipeline_err("envelope holds no loadable payload"));
            }
        };
        let mut pipeline = Self::from_model(spec, model);
        pipeline.set_abstain_threshold(abstain_threshold);
        pipeline.saved_tuning = saved_tuning;
        Ok(pipeline)
    }

    /// Writes the envelope to a file — atomically. The bytes land in a
    /// same-directory temp file, are fsynced, and only then renamed over
    /// `path`, so a crash or kill mid-save leaves either the previous
    /// artifact or the complete new one, never a torn envelope that
    /// [`Pipeline::load`] would reject (or worse, misload).
    ///
    /// # Errors
    ///
    /// As [`Pipeline::to_bytes`], plus I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let bytes = self.to_bytes()?;
        crate::persist::atomic_write(path.as_ref(), &bytes).map_err(|e| pipeline_err(e.to_string()))
    }

    /// Reads an envelope written by [`Pipeline::save`].
    ///
    /// # Errors
    ///
    /// As [`Pipeline::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| pipeline_err(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Serializes the pipeline for a fleet-store record as
    /// `(structure, heap)`: the structure stream holds the payload kind,
    /// abstention threshold, spec TOML, and the model's scalar skeleton,
    /// while every bulk array (projections, class matrices, packed words,
    /// int8 grids) lands in the 8-byte-aligned payload heap at an offset
    /// the structure stream records. [`Pipeline::decode_store_parts`]
    /// then serves those arrays zero-copy out of the loaded record blob.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::InvalidConfig`] for families without a
    /// binary codec (the classical baselines).
    pub(crate) fn encode_store_parts(&self) -> Result<(Vec<u8>, Vec<u8>)> {
        let kind = self.model.payload_kind();
        if kind == PayloadKind::Unsupported {
            return Err(BoostHdError::InvalidConfig {
                reason: format!(
                    "model family `{}` has no binary codec; only the HDC models persist",
                    self.spec.display_name()
                ),
            });
        }
        let spec_toml = self.spec.to_toml();
        let mut w = Writer::new_with_heap();
        w.put_u8(kind.tag());
        w.put_f32(self.abstain_threshold);
        w.put_u64(spec_toml.len() as u64);
        for &b in spec_toml.as_bytes() {
            w.put_u8(b);
        }
        self.model.encode_store(&mut w)?;
        Ok(w.into_parts())
    }

    /// Rebuilds a pipeline from a fleet-store record: `structure` is the
    /// stream [`Pipeline::encode_store_parts`] produced and
    /// `blob[heap_base..heap_base + heap_len]` its payload heap. The
    /// decoded model's bulk arrays stay zero-copy views into `blob` (kept
    /// alive by reference counting) until something mutates them.
    ///
    /// # Errors
    ///
    /// Returns [`BoostHdError::DataMismatch`] for truncated or corrupt
    /// records, and [`BoostHdError::InvalidConfig`] when the embedded
    /// spec disagrees with the payload kind.
    pub(crate) fn decode_store_parts(
        structure: &[u8],
        blob: Arc<Blob>,
        heap_base: usize,
        heap_len: usize,
    ) -> Result<Self> {
        let mut r = Reader::new_shared(structure, blob, heap_base, heap_len)?;
        let kind = PayloadKind::from_tag(r.get_u8()?)?;
        let abstain_threshold = r.get_f32()?;
        let spec_len = r.get_len()?;
        let spec_bytes = r.get_bytes(spec_len, "store record spec")?;
        let spec_toml = std::str::from_utf8(spec_bytes)
            .map_err(|_| pipeline_err("store record spec is not valid UTF-8"))?;
        let spec = ModelSpec::from_toml_str(spec_toml)?;
        if expected_payload_kind(&spec) != kind {
            return Err(BoostHdError::InvalidConfig {
                reason: format!(
                    "store record payload kind disagrees with its spec (`{}`)",
                    spec.kind_tag()
                ),
            });
        }
        let model: Box<dyn Model> = match kind {
            PayloadKind::OnlineHd => Box::new(OnlineHd::decode_from(&mut r)?),
            PayloadKind::CentroidHd => Box::new(CentroidHd::decode_from(&mut r)?),
            PayloadKind::BoostHd => Box::new(BoostHd::decode_from(&mut r)?),
            PayloadKind::QuantizedHd => Box::new(QuantizedHd::decode_from(&mut r)?),
            PayloadKind::QuantizedBoostHd => Box::new(QuantizedBoostHd::decode_from(&mut r)?),
            PayloadKind::QuantizedI8Hd => Box::new(QuantizedI8Hd::decode_from(&mut r)?),
            PayloadKind::QuantizedI8BoostHd => Box::new(QuantizedI8BoostHd::decode_from(&mut r)?),
            PayloadKind::Unsupported => {
                return Err(pipeline_err("store record holds no loadable payload"));
            }
        };
        if !r.is_exhausted() {
            return Err(pipeline_err("trailing bytes after store record structure"));
        }
        let mut pipeline = Self::from_model(spec, model);
        pipeline.set_abstain_threshold(abstain_threshold);
        Ok(pipeline)
    }
}

/// The payload kind a spec's trained model serializes through.
fn expected_payload_kind(spec: &ModelSpec) -> PayloadKind {
    match spec {
        ModelSpec::OnlineHd(_) => PayloadKind::OnlineHd,
        ModelSpec::CentroidHd(_) => PayloadKind::CentroidHd,
        ModelSpec::BoostHd(_) => PayloadKind::BoostHd,
        ModelSpec::QuantizedOnlineHd { .. } => PayloadKind::QuantizedHd,
        ModelSpec::QuantizedBoostHd { .. } => PayloadKind::QuantizedBoostHd,
        ModelSpec::QuantizedI8OnlineHd { .. } => PayloadKind::QuantizedI8Hd,
        ModelSpec::QuantizedI8BoostHd { .. } => PayloadKind::QuantizedI8BoostHd,
        ModelSpec::Baseline(_) => PayloadKind::Unsupported,
    }
}

impl Classifier for Pipeline {
    fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    fn scores(&self, x: &[f32]) -> Vec<f32> {
        self.model.scores(x)
    }

    fn scores_batch(&self, x: &Matrix) -> Matrix {
        self.model.scores_batch(x)
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        self.model.predict_batch(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineHdConfig;
    use crate::spec::default_specs;
    use crate::{BoostHdConfig, CentroidHdConfig};
    use linalg::Rng64;

    fn toy() -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::seed_from(12);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let class = i % 3;
            rows.push(vec![class as f32 + 0.2 * rng.normal(), 0.2 * rng.normal()]);
            labels.push(class);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn hdc_specs() -> Vec<ModelSpec> {
        vec![
            ModelSpec::OnlineHd(OnlineHdConfig {
                dim: 96,
                epochs: 3,
                ..Default::default()
            }),
            ModelSpec::CentroidHd(CentroidHdConfig {
                dim: 96,
                ..Default::default()
            }),
            ModelSpec::BoostHd(BoostHdConfig {
                dim_total: 120,
                n_learners: 4,
                epochs: 2,
                ..Default::default()
            }),
            ModelSpec::QuantizedOnlineHd {
                base: OnlineHdConfig {
                    dim: 96,
                    epochs: 3,
                    ..Default::default()
                },
                refit_epochs: 2,
            },
            ModelSpec::QuantizedBoostHd {
                base: BoostHdConfig {
                    dim_total: 120,
                    n_learners: 4,
                    epochs: 2,
                    ..Default::default()
                },
                refit_epochs: 0,
            },
            ModelSpec::QuantizedI8OnlineHd {
                base: OnlineHdConfig {
                    dim: 96,
                    epochs: 3,
                    ..Default::default()
                },
                refit_epochs: 2,
            },
            ModelSpec::QuantizedI8BoostHd {
                base: BoostHdConfig {
                    dim_total: 120,
                    n_learners: 4,
                    epochs: 2,
                    ..Default::default()
                },
                refit_epochs: 0,
            },
        ]
    }

    #[test]
    fn every_hdc_spec_fits_and_round_trips_the_envelope() {
        let (x, y) = toy();
        for spec in hdc_specs() {
            let pipeline = Pipeline::fit(&spec, &x, &y)
                .unwrap_or_else(|e| panic!("{} failed to fit: {e}", spec.kind_tag()));
            let restored = Pipeline::from_bytes(&pipeline.to_bytes().unwrap())
                .unwrap_or_else(|e| panic!("{} failed to reload: {e}", spec.kind_tag()));
            assert_eq!(
                pipeline.predict_batch(&x),
                restored.predict_batch(&x),
                "{} predictions drifted through the envelope",
                spec.kind_tag()
            );
            assert_eq!(restored.spec(), &spec, "{}", spec.kind_tag());
        }
    }

    #[test]
    fn envelope_preserves_abstain_threshold() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .with_abstain_threshold(0.61);
        let restored = Pipeline::from_bytes(&pipeline.to_bytes().unwrap()).unwrap();
        assert!((restored.abstain_threshold() - 0.61).abs() < 1e-6);
    }

    #[test]
    fn corrupt_envelopes_fail_loudly() {
        let (x, y) = toy();
        let bytes = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .to_bytes()
            .unwrap();
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Pipeline::from_bytes(&bad_magic).is_err());
        assert!(Pipeline::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Pipeline::from_bytes(&trailing).is_err());
        let mut wrong_version = bytes;
        wrong_version[4] = 9;
        assert!(Pipeline::from_bytes(&wrong_version).is_err());
    }

    #[test]
    fn confidence_is_normalized_and_margin_bounded() {
        let (x, y) = toy();
        for spec in hdc_specs() {
            let pipeline = Pipeline::fit(&spec, &x, &y).unwrap();
            for p in pipeline.predict_batch_with_confidence(&x) {
                assert!(
                    (0.0..=1.0).contains(&p.confidence),
                    "{}: confidence {}",
                    spec.kind_tag(),
                    p.confidence
                );
                assert!((0.0..=1.0).contains(&p.margin));
                let sum: f32 = p.probabilities.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "probabilities sum {sum}");
                assert!(!p.abstained, "threshold 0 never abstains");
            }
        }
    }

    #[test]
    fn batched_confidence_matches_rowwise() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[2], &x, &y).unwrap();
        let batch = pipeline.predict_batch_with_confidence(&x);
        for (r, batched) in batch.iter().enumerate() {
            let single = pipeline.predict_with_confidence(x.row(r));
            assert_eq!(single.class, batched.class);
            assert!((single.confidence - batched.confidence).abs() < 1e-6);
        }
    }

    #[test]
    fn abstention_threshold_gates_monotonically() {
        let (x, y) = toy();
        let mut pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y).unwrap();
        let mut previous = 0usize;
        for threshold in [0.0f32, 0.34, 0.6, 0.9, 1.0] {
            pipeline.set_abstain_threshold(threshold);
            let abstained = pipeline
                .predict_batch_with_confidence(&x)
                .iter()
                .filter(|p| p.abstained)
                .count();
            assert!(
                abstained >= previous,
                "raising the threshold to {threshold} reduced abstentions"
            );
            previous = abstained;
        }
        // At threshold 1.0 + ε-free softmax, every 3-class prediction with
        // confidence < 1 abstains; decision() mirrors the flag.
        pipeline.set_abstain_threshold(0.5);
        for p in pipeline.predict_batch_with_confidence(&x) {
            assert_eq!(p.decision().is_none(), p.abstained);
        }
    }

    #[test]
    fn nan_scores_yield_zero_confidence_and_abstain() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .with_abstain_threshold(0.1);
        let p = pipeline.prediction_from_scores(&[f32::NAN, f32::NAN, f32::NAN]);
        assert_eq!(p.confidence, 0.0);
        assert!(p.abstained);
        assert_eq!(p.decision(), None);
        let p = pipeline.prediction_from_scores(&[f32::NAN, 0.4, 0.1]);
        assert_eq!(p.class, 1, "NaN loses to finite scores");
        assert_eq!(p.probabilities[0], 0.0);
    }

    #[test]
    fn abstention_threshold_zero_and_one_edges() {
        let (x, y) = toy();
        let mut pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y).unwrap();
        // Threshold 0.0 (the default) never abstains, even on a row with
        // zero confidence (no finite evidence at all).
        pipeline.set_abstain_threshold(0.0);
        let p = pipeline.prediction_from_scores(&[f32::NAN, f32::NAN, f32::NAN]);
        assert_eq!(p.confidence, 0.0);
        assert!(!p.abstained, "threshold 0 must never abstain");
        assert_eq!(p.decision(), Some(0), "documented all-NaN fallback class");
        // Threshold 1.0 abstains on everything except full certainty.
        pipeline.set_abstain_threshold(1.0);
        for p in pipeline.predict_batch_with_confidence(&x) {
            assert_eq!(p.abstained, p.confidence < 1.0);
        }
        let certain = pipeline.prediction_from_scores(&[1.0e4, -1.0e4, -1.0e4]);
        assert_eq!(certain.confidence, 1.0, "softmax saturates");
        assert!(!certain.abstained, "full certainty survives threshold 1.0");
        // Out-of-range thresholds clamp instead of misbehaving.
        pipeline.set_abstain_threshold(7.5);
        assert_eq!(pipeline.abstain_threshold(), 1.0);
        pipeline.set_abstain_threshold(-0.5);
        assert_eq!(pipeline.abstain_threshold(), 0.0);
    }

    #[test]
    fn two_way_ties_pick_the_earliest_class_with_zero_margin() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .with_abstain_threshold(0.6);
        let p = pipeline.prediction_from_scores(&[0.5, 0.5]);
        assert_eq!(p.class, 0, "ties resolve to the earliest index");
        assert_eq!(p.margin, 0.0, "a perfect tie has no separation");
        assert!((p.confidence - 0.5).abs() < 1e-6);
        assert!(p.abstained, "tied 0.5 confidence sits below 0.6");
        // Three-way tie: uniform probabilities, still index 0.
        let p = pipeline.prediction_from_scores(&[2.0, 2.0, 2.0]);
        assert_eq!(p.class, 0);
        assert!((p.confidence - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(p.margin, 0.0);
    }

    #[test]
    fn single_class_models_are_always_certain() {
        let (x, _) = toy();
        let y = vec![0usize; x.rows()];
        for spec in [hdc_specs()[0].clone(), hdc_specs()[1].clone()] {
            let pipeline = Pipeline::fit(&spec, &x, &y)
                .unwrap()
                .with_abstain_threshold(1.0);
            assert_eq!(pipeline.num_classes(), 1, "{}", spec.kind_tag());
            for p in pipeline.predict_batch_with_confidence(&x) {
                assert_eq!(p.class, 0);
                assert_eq!(p.probabilities, vec![1.0]);
                assert_eq!(p.confidence, 1.0);
                assert_eq!(p.margin, 1.0, "top-1 minus a nonexistent top-2");
                assert!(
                    !p.abstained,
                    "a one-class model is certain even at threshold 1.0"
                );
            }
        }
    }

    #[test]
    fn all_nan_and_mixed_nan_rows_pin_the_argmax_fix() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .with_abstain_threshold(0.1);
        // All-NaN row: fallback class 0, zero everything, abstains.
        let p = pipeline.prediction_from_scores(&[f32::NAN; 3]);
        assert_eq!((p.class, p.confidence, p.margin), (0, 0.0, 0.0));
        assert_eq!(p.probabilities, vec![0.0; 3]);
        assert!(p.abstained && p.decision().is_none());
        // The PR-4 argmax regression: NaN must lose to every finite score,
        // including -inf and negatives in later positions.
        let p = pipeline.prediction_from_scores(&[f32::NAN, -5.0, -7.0]);
        assert_eq!(p.class, 1);
        assert_eq!(p.probabilities[0], 0.0, "NaN carries no probability");
        let p = pipeline.prediction_from_scores(&[f32::NEG_INFINITY, f32::NAN]);
        assert_eq!(p.class, 0, "-inf is still finite evidence ordering-wise");
        // +inf saturates the softmax instead of poisoning it: the max
        // filter treats it as non-finite, so the remaining mass wins.
        let p = pipeline.prediction_from_scores(&[f32::INFINITY, 1.0, 0.0]);
        assert!(p.probabilities.iter().all(|q| q.is_finite()));
    }

    #[test]
    fn envelope_with_bumped_unknown_version_fails_with_expected_variant() {
        let (x, y) = toy();
        let bytes = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .to_bytes()
            .unwrap();
        // Byte 4 is the envelope version (after the u32 magic).
        for future_version in [3u8, 9, 250] {
            let mut bumped = bytes.clone();
            bumped[4] = future_version;
            let err = Pipeline::from_bytes(&bumped).unwrap_err();
            assert!(
                matches!(err, BoostHdError::DataMismatch { .. }),
                "version {future_version}: wrong variant {err:?}"
            );
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("unsupported envelope version {future_version}")),
                "{msg}"
            );
            assert!(
                msg.contains(&format!("{ENVELOPE_MIN_VERSION}..={ENVELOPE_VERSION}")),
                "the error must name the supported range: {msg}"
            );
        }
        // Version 0 predates the format and is equally unreadable.
        let mut ancient = bytes.clone();
        ancient[4] = 0;
        assert!(Pipeline::from_bytes(&ancient).is_err());
    }

    #[test]
    fn envelope_with_unknown_model_kind_fails_with_expected_variant() {
        let (x, y) = toy();
        let bytes = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .to_bytes()
            .unwrap();
        // Byte 5 is the payload-kind tag; 8..255 are unassigned futures
        // (6/7 became the int8 tier in envelope v2).
        for future_kind in [8u8, 42, 255] {
            let mut unknown = bytes.clone();
            unknown[5] = future_kind;
            let err = Pipeline::from_bytes(&unknown).unwrap_err();
            assert!(
                matches!(err, BoostHdError::DataMismatch { .. }),
                "kind {future_kind}: wrong variant {err:?}"
            );
            assert!(
                err.to_string()
                    .contains(&format!("unknown payload kind {future_kind}")),
                "{err}"
            );
        }
        // A *known* kind that disagrees with the embedded spec is a
        // config-level mismatch, also loud, also not a panic.
        let mut mismatched = bytes.clone();
        mismatched[5] = PayloadKind::CentroidHd.tag();
        let err = Pipeline::from_bytes(&mismatched).unwrap_err();
        assert!(matches!(err, BoostHdError::InvalidConfig { .. }), "{err:?}");
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn v1_envelopes_without_tuning_record_remain_readable() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y)
            .unwrap()
            .with_abstain_threshold(0.4);
        let v2 = pipeline.to_bytes().unwrap();
        // A v1 envelope is the v2 layout minus the 9-byte tuning record
        // (u32 score_chunk + u32 threads + u8 source tag) that v2 inserts
        // after the abstain threshold at offset 10.
        let mut v1 = Vec::with_capacity(v2.len() - 9);
        v1.extend_from_slice(&v2[..10]);
        v1.extend_from_slice(&v2[19..]);
        v1[4] = 1;
        let restored = Pipeline::from_bytes(&v1).expect("v1 envelope must stay readable");
        assert_eq!(restored.predict_batch(&x), pipeline.predict_batch(&x));
        assert!((restored.abstain_threshold() - 0.4).abs() < 1e-6);
        assert_eq!(restored.saved_tuning(), None, "v1 carries no tuning");
    }

    #[test]
    fn envelope_records_and_restores_the_tuning_provenance() {
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y).unwrap();
        assert_eq!(
            pipeline.saved_tuning(),
            None,
            "a freshly-fit pipeline has no envelope provenance"
        );
        let restored = Pipeline::from_bytes(&pipeline.to_bytes().unwrap()).unwrap();
        let tuning = restored.saved_tuning().expect("v2 always records tuning");
        assert_eq!(tuning, linalg::autotune::tuning(), "same-process save/load");
        assert!(tuning.score_chunk.is_power_of_two() && tuning.score_chunk >= 64);
        assert!(tuning.threads >= 1);
        // Provenance is diagnostic only: re-saving the restored pipeline
        // stamps the *current* machine's tuning, not the recorded one.
        let again = Pipeline::from_bytes(&restored.to_bytes().unwrap()).unwrap();
        assert_eq!(again.saved_tuning(), restored.saved_tuning());
    }

    #[test]
    fn unregistered_baseline_reports_clear_error() {
        // Nothing in this crate's test binary ever registers a baseline
        // builder (the registration lives in the `baselines` crate), so
        // the registry is guaranteed empty here.
        let ModelSpec::Baseline(_) = &default_specs(1)[7] else {
            panic!("spec order changed");
        };
        let (x, y) = toy();
        let err = Pipeline::fit(&default_specs(1)[7], &x, &y).unwrap_err();
        assert!(
            err.to_string().contains("no baseline builder registered"),
            "{err}"
        );
        assert!(
            err.to_string().contains("baselines::spec::install"),
            "error must tell the caller the fix: {err}"
        );
    }

    #[test]
    fn downcasts_reach_the_concrete_model() {
        let (x, y) = toy();
        let mut pipeline = Pipeline::fit(&hdc_specs()[0], &x, &y).unwrap();
        assert!(pipeline.downcast_ref::<OnlineHd>().is_some());
        assert!(pipeline.downcast_ref::<BoostHd>().is_none());
        let before = pipeline.predict(x.row(0));
        // The mutable downcast reaches OnlineHd's streaming update hook.
        pipeline
            .downcast_mut::<OnlineHd>()
            .unwrap()
            .update(x.row(0), y[0])
            .unwrap();
        let _ = before;
    }

    #[test]
    fn pipeline_is_a_classifier_for_the_serving_engine() {
        fn takes_classifier<C: Classifier + Sync>(_c: &C) {}
        let (x, y) = toy();
        let pipeline = Pipeline::fit(&hdc_specs()[1], &x, &y).unwrap();
        takes_classifier(&pipeline);
        assert_eq!(
            pipeline.predict_batch_parallel(&x, 3),
            pipeline.predict_batch(&x)
        );
    }
}
