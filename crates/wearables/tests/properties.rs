//! Property-based tests for the wearable data substrate.

use linalg::{Matrix, Rng64};
use proptest::prelude::*;
use wearables::preprocess::{moving_average, window_features, Normalizer};
use wearables::profiles::{self, DatasetProfile};

proptest! {
    #[test]
    fn moving_average_stays_within_input_range(
        signal in proptest::collection::vec(-100.0f32..100.0, 1..300),
        window in 1usize..50,
    ) {
        let out = moving_average(&signal, window);
        let lo = signal.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = signal.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in out {
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
        }
    }

    #[test]
    fn moving_average_preserves_length(
        signal in proptest::collection::vec(-10.0f32..10.0, 0..200),
        window in 1usize..40,
    ) {
        prop_assert_eq!(moving_average(&signal, window).len(), signal.len());
    }

    #[test]
    fn window_features_order_min_mean_max(
        signal in proptest::collection::vec(-50.0f32..50.0, 8..200),
        segments in 1usize..4,
    ) {
        prop_assume!(signal.len() >= segments);
        let f = window_features(&signal, segments);
        prop_assert_eq!(f.len(), segments * 4);
        for seg in f.chunks_exact(4) {
            let (min, max, mean, std) = (seg[0], seg[1], seg[2], seg[3]);
            prop_assert!(min <= mean + 1e-4 && mean <= max + 1e-4);
            prop_assert!(std >= 0.0);
            prop_assert!(std <= (max - min) + 1e-4, "std bounded by range");
        }
    }

    #[test]
    fn normalizer_apply_is_affine(seed in any::<u64>(), rows in 2usize..40, cols in 1usize..8) {
        let mut rng = Rng64::seed_from(seed);
        let x = Matrix::random_uniform(rows, cols, -3.0, 3.0, &mut rng);
        let norm = Normalizer::fit(&x).unwrap();
        let z = norm.apply(&x);
        // Applying to a doubled matrix doubles distances from the mean:
        // affine maps preserve midpoints.
        let a = z.row(0);
        let b = z.row(1);
        for (va, vb) in a.iter().zip(b.iter()) {
            prop_assert!(va.is_finite() && vb.is_finite());
        }
    }

    #[test]
    fn generation_shapes_hold_for_any_small_profile(
        seed in any::<u64>(),
        subjects in 1usize..5,
        windows in 1usize..5,
        segments in 1usize..4,
    ) {
        let profile = DatasetProfile {
            subjects,
            windows_per_state: windows,
            window_samples: 120,
            segments,
            ..profiles::wesad_like()
        };
        let data = wearables::generate(&profile, seed).unwrap();
        prop_assert_eq!(data.len(), subjects * 3 * windows);
        prop_assert_eq!(data.num_features(), 8 * segments * 4);
        prop_assert!(data.features().as_slice().iter().all(|v| v.is_finite()));
        for &sid in data.subject_ids() {
            prop_assert!(sid < subjects);
        }
    }

    #[test]
    fn labels_bounded_by_three_states(seed in any::<u64>(), noise in 0.0f64..1.0) {
        let profile = DatasetProfile {
            subjects: 3,
            windows_per_state: 3,
            window_samples: 100,
            label_noise: noise,
            ..profiles::nurse_like()
        };
        let data = wearables::generate(&profile, seed).unwrap();
        for &y in data.labels() {
            prop_assert!(y < 3);
        }
    }

    #[test]
    fn subject_split_partitions_rows(seed in any::<u64>(), frac in 0.15f64..0.85) {
        let profile = DatasetProfile {
            subjects: 8,
            windows_per_state: 3,
            window_samples: 100,
            ..profiles::wesad_like()
        };
        let data = wearables::generate(&profile, seed).unwrap();
        let (train, test) = data.split_by_subject_fraction(frac, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), data.len());
        for sid in test.distinct_subject_ids() {
            prop_assert!(!train.distinct_subject_ids().contains(&sid));
        }
    }
}
