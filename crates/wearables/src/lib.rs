//! Synthetic wearable-sensor substrate for the BoostHD evaluation.
//!
//! The paper evaluates on three proprietary-ish wearable stress datasets —
//! WESAD (Empatica E4 + RespiBAN, 15 subjects), the Nurse Stress dataset
//! (37 subjects), and Stress-Predict (15 subjects). None ship with this
//! repository, so this crate implements the closest synthetic equivalent
//! that exercises the same code paths (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`signals`] — generative models of the physiological channels those
//!   devices record: blood volume pulse, ECG, electrodermal activity
//!   (tonic level + phasic SCR bursts), respiration, skin temperature,
//!   3-axis acceleration, and EMG;
//! * [`subject`] — per-subject latent physiology (baseline heart rate, EDA
//!   level, stress response gain, …) plus the demographic attributes
//!   (handedness, gender, age, height) behind the paper's person-specific
//!   evaluation (Table III);
//! * [`affect`] — the three affective states and how each shifts the
//!   physiological parameters;
//! * [`preprocess`] — the paper's exact pipeline: moving-average filter
//!   with window 30, per-window min/max/mean/std features, z-normalization;
//! * [`profiles`] — dataset profiles calibrated so classifier accuracy
//!   lands in each paper dataset's band (high for WESAD-like, ~60% for
//!   Nurse-like, high-60s for Stress-Predict-like);
//! * [`dataset`] — the labeled feature table with subject metadata and
//!   subject-wise train/test splitting (the paper organizes test data "by
//!   subject units");
//! * [`streaming`] — the serving-side view: a lazy iterator of sliding,
//!   preprocessed windows per subject (`subjects × signals → preprocess →
//!   window`) in the same feature space the dataset path produces, feeding
//!   the continuous-monitoring inference engine.
//!
//! # Example
//!
//! ```
//! use wearables::profiles::{self, DatasetProfile};
//!
//! let profile = DatasetProfile { subjects: 4, windows_per_state: 5, ..profiles::wesad_like() };
//! let data = profiles::generate(&profile, 42)?;
//! assert_eq!(data.num_classes(), 3);
//! assert_eq!(data.len(), 4 * 3 * 5);
//! let (train, test) = data.split_by_subject_fraction(0.25, 7)?;
//! assert!(train.len() > test.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod affect;
pub mod dataset;
pub mod error;
pub mod preprocess;
pub mod profiles;
pub mod signals;
pub mod streaming;
pub mod subject;

pub use affect::AffectState;
pub use dataset::Dataset;
pub use error::{Result, WearableError};
pub use profiles::{generate, DatasetProfile};
pub use streaming::{StreamedWindow, WindowStream};
pub use subject::{Handedness, Sex, Subject, SubjectGroup};
