//! Dataset profiles reproducing the paper's three evaluation datasets.
//!
//! Each profile bundles the knobs of the generative pipeline. The defaults
//! are calibrated (see EXPERIMENTS.md) so that the classifier accuracy
//! bands land where the paper's Table I reports them:
//!
//! * [`wesad_like`] — clean lab protocol, strong affect signatures:
//!   accuracies in the 90s, HDC and tree ensembles near 96–98%;
//! * [`nurse_like`] — in-the-wild hospital shifts, 37 subjects, heavy label
//!   ambiguity: everything lands near 55–62%;
//! * [`stress_predict_like`] — pilot-study quality, 15 subjects: mid-60s.
//!
//! The *difficulty* axes are exactly the ones that differ between the real
//! datasets: affect-signature strength (`state_separation`), inter-subject
//! physiology spread (`subject_variability`, which is what makes
//! leave-subject-out evaluation hard), sensor noise, and annotation quality
//! (`label_noise` — ecological momentary stress labels are notoriously
//! unreliable). `segments` widens the feature vector the way the
//! Nurse/Stress-Predict preprocessing does (more per-window statistics).

use crate::affect::{AffectState, PhysioParams};
use crate::dataset::Dataset;
use crate::error::{Result, WearableError};
use crate::preprocess::{moving_average, window_features, PAPER_MA_WINDOW, STATS_PER_SEGMENT};
use crate::signals::{self, Channel};
use crate::subject::Subject;
use linalg::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Full specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name stamped on the generated [`Dataset`].
    pub name: String,
    /// Number of subjects in the cohort.
    pub subjects: usize,
    /// Recording windows per subject per affective state.
    pub windows_per_state: usize,
    /// Raw samples per window per channel (at 16 Hz; 480 = 30 s).
    pub window_samples: usize,
    /// Sub-segments per window for feature extraction (1 → 32 features,
    /// 4 → 128 features).
    pub segments: usize,
    /// Scale of the affective parameter shifts (1.0 = textbook effects).
    pub state_separation: f32,
    /// Spread of per-subject baselines (drives leave-subject-out
    /// difficulty).
    pub subject_variability: f32,
    /// Additive sensor noise std on every raw sample.
    pub sensor_noise: f32,
    /// Probability that a window's label is replaced by a random other
    /// state (annotation ambiguity).
    pub label_noise: f64,
    /// Moving-average window (the paper uses 30).
    pub ma_window: usize,
}

/// WESAD-like profile: 15 subjects, clean lab protocol.
pub fn wesad_like() -> DatasetProfile {
    DatasetProfile {
        name: "wesad-like".into(),
        subjects: 15,
        windows_per_state: 40,
        window_samples: 480,
        segments: 1,
        state_separation: 1.7,
        subject_variability: 0.4,
        sensor_noise: 0.05,
        label_noise: 0.0,
        ma_window: PAPER_MA_WINDOW,
    }
}

/// Nurse-Stress-like profile: 37 subjects, in-the-wild, hard.
pub fn nurse_like() -> DatasetProfile {
    DatasetProfile {
        name: "nurse-stress-like".into(),
        subjects: 37,
        windows_per_state: 18,
        window_samples: 480,
        segments: 4,
        state_separation: 1.2,
        subject_variability: 0.9,
        sensor_noise: 0.35,
        label_noise: 0.30,
        ma_window: PAPER_MA_WINDOW,
    }
}

/// Stress-Predict-like profile: 15 subjects, pilot-study quality.
pub fn stress_predict_like() -> DatasetProfile {
    DatasetProfile {
        name: "stress-predict-like".into(),
        subjects: 15,
        windows_per_state: 30,
        window_samples: 480,
        segments: 3,
        state_separation: 1.3,
        subject_variability: 0.85,
        sensor_noise: 0.3,
        label_noise: 0.15,
        ma_window: PAPER_MA_WINDOW,
    }
}

/// The three paper datasets in Table I row order.
pub fn paper_profiles() -> [DatasetProfile; 3] {
    [wesad_like(), nurse_like(), stress_predict_like()]
}

/// Per-window physiological wander: no two windows of the same subject and
/// state are identical. Shared with the [`crate::streaming`] generator so
/// streamed windows wander the same way dataset windows do.
pub(crate) fn window_jitter(mut p: PhysioParams, rng: &mut Rng64) -> PhysioParams {
    p.heart_rate += rng.normal_with(0.0, 2.5);
    p.hrv += rng.normal_with(0.0, 0.004);
    p.eda_tonic += rng.normal_with(0.0, 0.15);
    p.scr_rate += rng.normal_with(0.0, 0.6);
    p.resp_rate += rng.normal_with(0.0, 0.8);
    p.temperature += rng.normal_with(0.0, 0.08);
    p.motion += rng.normal_with(0.0, 0.05);
    p.emg_tone += rng.normal_with(0.0, 0.15);
    p.clamped()
}

/// Generates the dataset a profile describes. Deterministic in
/// `(profile, seed)`.
///
/// Features are **not** normalized here: normalization statistics must come
/// from the training split only (see [`crate::dataset::normalize_pair`]).
///
/// # Errors
///
/// Returns [`WearableError::InvalidConfig`] for zero subjects/windows, a
/// window too short for the segment count, or a zero moving-average window.
pub fn generate(profile: &DatasetProfile, seed: u64) -> Result<Dataset> {
    if profile.subjects == 0 || profile.windows_per_state == 0 {
        return Err(WearableError::InvalidConfig {
            reason: "profile needs at least one subject and one window per state".into(),
        });
    }
    if profile.segments == 0 || profile.window_samples < profile.segments {
        return Err(WearableError::InvalidConfig {
            reason: format!(
                "{} samples cannot form {} segments",
                profile.window_samples, profile.segments
            ),
        });
    }
    if profile.ma_window == 0 {
        return Err(WearableError::InvalidConfig {
            reason: "moving-average window must be positive".into(),
        });
    }

    let mut rng = Rng64::seed_from(seed);
    let subjects: Vec<Subject> = (0..profile.subjects)
        .map(|i| Subject::sample(i, profile.subject_variability, &mut rng))
        .collect();

    let n_rows = profile.subjects * AffectState::ALL.len() * profile.windows_per_state;
    let n_features = Channel::ALL.len() * profile.segments * STATS_PER_SEGMENT;
    let mut x = Matrix::zeros(n_rows, n_features);
    let mut y = Vec::with_capacity(n_rows);
    let mut subject_ids = Vec::with_capacity(n_rows);

    let mut row = 0usize;
    for subject in &subjects {
        for &state in &AffectState::ALL {
            let state_params =
                subject
                    .baseline
                    .with_state(state, profile.state_separation, subject.response_gain);
            for _w in 0..profile.windows_per_state {
                let params = window_jitter(state_params, &mut rng);
                let raw = signals::generate_window(
                    &params,
                    profile.window_samples,
                    profile.sensor_noise,
                    &mut rng,
                );
                let out_row = x.row_mut(row);
                let mut offset = 0usize;
                for channel in &raw {
                    let filtered = moving_average(channel, profile.ma_window);
                    let feats = window_features(&filtered, profile.segments);
                    out_row[offset..offset + feats.len()].copy_from_slice(&feats);
                    offset += feats.len();
                }
                let label = if rng.chance(profile.label_noise) {
                    let mut other = rng.below(AffectState::ALL.len() - 1);
                    if other >= state.label() {
                        other += 1;
                    }
                    other
                } else {
                    state.label()
                };
                y.push(label);
                subject_ids.push(subject.id);
                row += 1;
            }
        }
    }

    let feature_names = feature_names(profile.segments);
    Dataset::new(
        profile.name.clone(),
        x,
        y,
        subject_ids,
        subjects,
        feature_names,
    )
}

/// Column names: `"{CHANNEL}_{seg}_{stat}"`.
fn feature_names(segments: usize) -> Vec<String> {
    let stats = ["min", "max", "mean", "std"];
    let mut names = Vec::new();
    for channel in Channel::ALL {
        for seg in 0..segments {
            for stat in stats {
                names.push(format!("{}_{}_{}", channel.name(), seg, stat));
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(profile: DatasetProfile) -> DatasetProfile {
        DatasetProfile {
            subjects: 4,
            windows_per_state: 4,
            window_samples: 160,
            ..profile
        }
    }

    #[test]
    fn generation_shapes() {
        let data = generate(&tiny(wesad_like()), 1).unwrap();
        assert_eq!(data.len(), 4 * 3 * 4);
        assert_eq!(data.num_features(), 8 * 4);
        assert_eq!(data.num_classes(), 3);
        assert_eq!(data.subjects().len(), 4);
    }

    #[test]
    fn segments_widen_features() {
        let data = generate(&tiny(nurse_like()), 1).unwrap();
        assert_eq!(data.num_features(), 8 * 4 * 4);
        let data = generate(&tiny(stress_predict_like()), 1).unwrap();
        assert_eq!(data.num_features(), 8 * 3 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&tiny(wesad_like()), 9).unwrap();
        let b = generate(&tiny(wesad_like()), 9).unwrap();
        assert_eq!(a, b);
        let c = generate(&tiny(wesad_like()), 10).unwrap();
        assert_ne!(a.features(), c.features());
    }

    #[test]
    fn labels_are_balanced_without_label_noise() {
        let data = generate(&tiny(wesad_like()), 2).unwrap();
        let counts = data.class_counts();
        assert!(counts.iter().all(|&c| c == counts[0]));
    }

    #[test]
    fn label_noise_perturbs_labels() {
        let mut profile = tiny(wesad_like());
        profile.label_noise = 0.5;
        let clean = generate(&tiny(wesad_like()), 3).unwrap();
        let noisy = generate(&profile, 3).unwrap();
        let differing = clean
            .labels()
            .iter()
            .zip(noisy.labels())
            .filter(|(a, b)| a != b)
            .count();
        assert!(differing > 0, "label noise must change some labels");
    }

    #[test]
    fn wesad_like_is_linearly_separable_enough() {
        // Quick sanity: a nearest-centroid rule on normalized features must
        // beat chance by a wide margin on the clean profile (full models
        // are exercised in the integration tests).
        let profile = DatasetProfile {
            subjects: 6,
            windows_per_state: 10,
            ..wesad_like()
        };
        let data = generate(&profile, 4).unwrap();
        let (train, test) = data.split_by_subject_fraction(0.34, 1).unwrap();
        let (train, test) = crate::dataset::normalize_pair(&train, &test).unwrap();
        let k = train.num_classes();
        let f = train.num_features();
        let mut centroids = vec![vec![0.0f64; f]; k];
        let mut counts = vec![0usize; k];
        for (i, &label) in train.labels().iter().enumerate() {
            for (c, &v) in centroids[label].iter_mut().zip(train.features().row(i)) {
                *c += v as f64;
            }
            counts[label] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *n as f64;
            }
        }
        let mut correct = 0usize;
        for (i, &label) in test.labels().iter().enumerate() {
            let row = test.features().row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                let d: f64 = row
                    .iter()
                    .zip(c.iter())
                    .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(
            acc > 0.6,
            "nearest centroid should beat chance easily, got {acc}"
        );
    }

    #[test]
    fn nurse_like_is_harder_than_wesad_like() {
        let easy = DatasetProfile {
            subjects: 6,
            windows_per_state: 8,
            ..wesad_like()
        };
        let hard = DatasetProfile {
            subjects: 6,
            windows_per_state: 8,
            ..nurse_like()
        };
        let acc = |profile: &DatasetProfile| {
            let data = generate(profile, 5).unwrap();
            let (train, test) = data.split_by_subject_fraction(0.34, 2).unwrap();
            let (train, test) = crate::dataset::normalize_pair(&train, &test).unwrap();
            // 1-NN accuracy as a model-free difficulty probe.
            let mut correct = 0usize;
            for (i, &label) in test.labels().iter().enumerate() {
                let row = test.features().row(i);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for j in 0..train.len() {
                    let d: f64 = row
                        .iter()
                        .zip(train.features().row(j))
                        .map(|(&a, &b)| (a as f64 - b as f64) * (a as f64 - b as f64))
                        .sum();
                    if d < best_d {
                        best_d = d;
                        best = train.labels()[j];
                    }
                }
                if best == label {
                    correct += 1;
                }
            }
            correct as f64 / test.len() as f64
        };
        assert!(acc(&easy) > acc(&hard) + 0.1);
    }

    #[test]
    fn invalid_profiles_rejected() {
        let mut p = tiny(wesad_like());
        p.subjects = 0;
        assert!(generate(&p, 0).is_err());
        let mut p = tiny(wesad_like());
        p.segments = 0;
        assert!(generate(&p, 0).is_err());
        let mut p = tiny(wesad_like());
        p.window_samples = 2;
        p.segments = 4;
        assert!(generate(&p, 0).is_err());
        let mut p = tiny(wesad_like());
        p.ma_window = 0;
        assert!(generate(&p, 0).is_err());
    }

    #[test]
    fn feature_names_match_columns() {
        let data = generate(&tiny(stress_predict_like()), 6).unwrap();
        assert_eq!(data.feature_names().len(), data.num_features());
        assert!(data.feature_names()[0].starts_with("BVP"));
        assert!(data.feature_names().iter().any(|n| n.contains("EDA")));
    }

    #[test]
    fn paper_profiles_have_paper_cohort_sizes() {
        let [wesad, nurse, sp] = paper_profiles();
        assert_eq!(wesad.subjects, 15);
        assert_eq!(nurse.subjects, 37);
        assert_eq!(sp.subjects, 15);
    }
}
