//! Affective states and their physiological signatures.
//!
//! The paper reduces all three datasets to three labels. WESAD names them
//! *neutral / stress / amusement*; the nurse and Stress-Predict reductions
//! use *good / common / stress*. We use one three-state enum and let each
//! dataset profile choose display names.
//!
//! Each state shifts the latent physiological parameters in the direction
//! the stress literature (and the WESAD paper) describes: acute stress
//! raises heart rate, electrodermal activity (more skin-conductance
//! responses), respiration rate and muscle tone, and lowers heart-rate
//! variability and peripheral temperature; amusement is a milder, partially
//! overlapping arousal state.

use serde::{Deserialize, Serialize};

/// The three affective conditions every dataset labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AffectState {
    /// Calm baseline ("neutral" / "good").
    Baseline,
    /// Positive arousal ("amusement" / "common").
    Amusement,
    /// Acute stress.
    Stress,
}

impl AffectState {
    /// All states in label order (`Baseline = 0`, `Amusement = 1`,
    /// `Stress = 2`).
    pub const ALL: [AffectState; 3] = [
        AffectState::Baseline,
        AffectState::Amusement,
        AffectState::Stress,
    ];

    /// The class label used in datasets.
    pub fn label(self) -> usize {
        match self {
            AffectState::Baseline => 0,
            AffectState::Amusement => 1,
            AffectState::Stress => 2,
        }
    }

    /// State from a class label.
    ///
    /// # Panics
    ///
    /// Panics if `label > 2`.
    pub fn from_label(label: usize) -> Self {
        Self::ALL[label]
    }

    /// WESAD-style display name.
    pub fn wesad_name(self) -> &'static str {
        match self {
            AffectState::Baseline => "neutral",
            AffectState::Amusement => "amusement",
            AffectState::Stress => "stress",
        }
    }

    /// Nurse/Stress-Predict-style display name.
    pub fn stress_level_name(self) -> &'static str {
        match self {
            AffectState::Baseline => "good",
            AffectState::Amusement => "common",
            AffectState::Stress => "stress",
        }
    }
}

/// Latent physiological parameters for one recording window.
///
/// Units are approximate physical ones (bpm, breaths/min, µS, °C); they only
/// need to be *consistent*, since the pipeline z-normalizes features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysioParams {
    /// Heart rate in beats per minute.
    pub heart_rate: f32,
    /// Heart-rate variability (std of beat-to-beat interval, seconds).
    pub hrv: f32,
    /// Tonic electrodermal level in µS.
    pub eda_tonic: f32,
    /// Skin conductance responses per minute.
    pub scr_rate: f32,
    /// Respiration rate in breaths per minute.
    pub resp_rate: f32,
    /// Skin temperature in °C.
    pub temperature: f32,
    /// Gross motion level (arbitrary g-scaled units).
    pub motion: f32,
    /// Muscle tone driving the EMG envelope.
    pub emg_tone: f32,
}

impl PhysioParams {
    /// Population-average resting physiology.
    pub fn resting() -> Self {
        Self {
            heart_rate: 68.0,
            hrv: 0.060,
            eda_tonic: 2.0,
            scr_rate: 2.0,
            resp_rate: 14.0,
            temperature: 33.6,
            motion: 0.15,
            emg_tone: 0.8,
        }
    }

    /// Applies the signature of `state`, scaled by `separation` (the dataset
    /// profile's difficulty knob; 1.0 = textbook effect sizes) and by the
    /// subject's individual `response_gain`.
    pub fn with_state(mut self, state: AffectState, separation: f32, response_gain: f32) -> Self {
        let s = separation * response_gain;
        match state {
            AffectState::Baseline => {}
            AffectState::Amusement => {
                self.heart_rate += 6.0 * s;
                self.hrv -= 0.008 * s;
                self.eda_tonic += 0.5 * s;
                self.scr_rate += 1.5 * s;
                self.resp_rate += 1.5 * s;
                self.temperature -= 0.1 * s;
                self.motion += 0.10 * s;
                self.emg_tone += 0.2 * s;
            }
            AffectState::Stress => {
                self.heart_rate += 16.0 * s;
                self.hrv -= 0.022 * s;
                self.eda_tonic += 1.8 * s;
                self.scr_rate += 5.0 * s;
                self.resp_rate += 4.0 * s;
                self.temperature -= 0.45 * s;
                self.motion += 0.05 * s;
                self.emg_tone += 0.9 * s;
            }
        }
        self.clamped()
    }

    /// Clamps every parameter to its physically plausible range.
    pub fn clamped(mut self) -> Self {
        self.heart_rate = self.heart_rate.clamp(40.0, 190.0);
        self.hrv = self.hrv.clamp(0.003, 0.2);
        self.eda_tonic = self.eda_tonic.clamp(0.05, 25.0);
        self.scr_rate = self.scr_rate.clamp(0.0, 25.0);
        self.resp_rate = self.resp_rate.clamp(6.0, 40.0);
        self.temperature = self.temperature.clamp(28.0, 38.0);
        self.motion = self.motion.clamp(0.0, 3.0);
        self.emg_tone = self.emg_tone.clamp(0.0, 8.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for state in AffectState::ALL {
            assert_eq!(AffectState::from_label(state.label()), state);
        }
    }

    #[test]
    fn names_are_distinct() {
        let wesad: Vec<&str> = AffectState::ALL.iter().map(|s| s.wesad_name()).collect();
        assert_eq!(wesad.len(), 3);
        assert!(wesad.contains(&"stress") && wesad.contains(&"neutral"));
        assert_eq!(AffectState::Stress.stress_level_name(), "stress");
        assert_eq!(AffectState::Baseline.stress_level_name(), "good");
    }

    #[test]
    fn stress_raises_arousal_markers() {
        let base = PhysioParams::resting();
        let stressed = base.with_state(AffectState::Stress, 1.0, 1.0);
        assert!(stressed.heart_rate > base.heart_rate);
        assert!(stressed.eda_tonic > base.eda_tonic);
        assert!(stressed.scr_rate > base.scr_rate);
        assert!(stressed.hrv < base.hrv);
        assert!(stressed.temperature < base.temperature);
    }

    #[test]
    fn amusement_is_milder_than_stress() {
        let base = PhysioParams::resting();
        let amused = base.with_state(AffectState::Amusement, 1.0, 1.0);
        let stressed = base.with_state(AffectState::Stress, 1.0, 1.0);
        assert!(amused.heart_rate > base.heart_rate);
        assert!(amused.heart_rate < stressed.heart_rate);
        assert!(amused.scr_rate < stressed.scr_rate);
    }

    #[test]
    fn zero_separation_means_no_shift() {
        let base = PhysioParams::resting();
        let unchanged = base.with_state(AffectState::Stress, 0.0, 1.0);
        assert_eq!(base, unchanged);
    }

    #[test]
    fn response_gain_scales_shift() {
        let base = PhysioParams::resting();
        let weak = base.with_state(AffectState::Stress, 1.0, 0.5);
        let strong = base.with_state(AffectState::Stress, 1.0, 2.0);
        assert!(strong.heart_rate > weak.heart_rate);
    }

    #[test]
    fn clamping_bounds_extremes() {
        let mut wild = PhysioParams::resting();
        wild.heart_rate = 1000.0;
        wild.hrv = -3.0;
        let clamped = wild.clamped();
        assert_eq!(clamped.heart_rate, 190.0);
        assert_eq!(clamped.hrv, 0.003);
    }
}
