//! Labeled feature tables with subject metadata and subject-wise splits.
//!
//! The paper organizes test data "by subject units": a model never sees the
//! test subjects during training. [`Dataset::split_by_subject_fraction`]
//! implements that protocol, and [`Dataset::split_by_group`] implements the
//! Table III person-specific protocol (train on everyone outside the group,
//! test on the group's members).

use crate::error::{Result, WearableError};
use crate::preprocess::Normalizer;
use crate::subject::{Subject, SubjectGroup};
use linalg::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// A labeled dataset of windowed wearable features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"wesad-like"`).
    pub name: String,
    x: Matrix,
    y: Vec<usize>,
    subject_ids: Vec<usize>,
    subjects: Vec<Subject>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Assembles a dataset, validating that rows, labels, and subject ids
    /// agree.
    ///
    /// # Errors
    ///
    /// Returns [`WearableError::InvalidConfig`] on any length mismatch.
    pub fn new(
        name: impl Into<String>,
        x: Matrix,
        y: Vec<usize>,
        subject_ids: Vec<usize>,
        subjects: Vec<Subject>,
        feature_names: Vec<String>,
    ) -> Result<Self> {
        if x.rows() != y.len() || x.rows() != subject_ids.len() {
            return Err(WearableError::InvalidConfig {
                reason: format!(
                    "rows={}, labels={}, subject_ids={} must agree",
                    x.rows(),
                    y.len(),
                    subject_ids.len()
                ),
            });
        }
        if x.cols() != feature_names.len() {
            return Err(WearableError::InvalidConfig {
                reason: format!(
                    "{} feature columns but {} feature names",
                    x.cols(),
                    feature_names.len()
                ),
            });
        }
        Ok(Self {
            name: name.into(),
            x,
            y,
            subject_ids,
            subjects,
            feature_names,
        })
    }

    /// The feature matrix (`windows × features`).
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// Per-row class labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Per-row subject ids.
    pub fn subject_ids(&self) -> &[usize] {
        &self.subject_ids
    }

    /// The subject roster (including subjects whose rows were filtered out).
    pub fn subjects(&self) -> &[Subject] {
        &self.subjects
    }

    /// Feature column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of rows (windows).
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of classes (`max(label) + 1`).
    pub fn num_classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.x.cols()
    }

    /// A new dataset holding only the given rows (subject roster is kept in
    /// full so group definitions stay valid).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            subject_ids: indices.iter().map(|&i| self.subject_ids[i]).collect(),
            subjects: self.subjects.clone(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Splits into (train, test) with all rows of `test_subjects` in the
    /// test set.
    ///
    /// # Errors
    ///
    /// Returns [`WearableError::DegenerateSplit`] if either side would be
    /// empty.
    pub fn split_by_subjects(&self, test_subjects: &[usize]) -> Result<(Dataset, Dataset)> {
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for (i, sid) in self.subject_ids.iter().enumerate() {
            if test_subjects.contains(sid) {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        if train_idx.is_empty() || test_idx.is_empty() {
            return Err(WearableError::DegenerateSplit {
                reason: format!(
                    "split leaves train={} / test={} rows",
                    train_idx.len(),
                    test_idx.len()
                ),
            });
        }
        Ok((self.select(&train_idx), self.select(&test_idx)))
    }

    /// Holds out a random `test_fraction` of *subjects* (not rows) as the
    /// test set — the paper's protocol.
    ///
    /// # Errors
    ///
    /// Returns [`WearableError::DegenerateSplit`] if the fraction rounds to
    /// zero or all subjects.
    pub fn split_by_subject_fraction(
        &self,
        test_fraction: f64,
        seed: u64,
    ) -> Result<(Dataset, Dataset)> {
        let mut ids: Vec<usize> = self.subjects.iter().map(|s| s.id).collect();
        if ids.is_empty() {
            // Fall back to distinct ids present in rows.
            ids = self.distinct_subject_ids();
        }
        let n_test = ((ids.len() as f64) * test_fraction).round() as usize;
        if n_test == 0 || n_test >= ids.len() {
            return Err(WearableError::DegenerateSplit {
                reason: format!(
                    "test fraction {test_fraction} keeps {n_test} of {} subjects",
                    ids.len()
                ),
            });
        }
        let mut rng = Rng64::seed_from(seed);
        rng.shuffle(&mut ids);
        ids.truncate(n_test);
        self.split_by_subjects(&ids)
    }

    /// Table III protocol: train on subjects outside `group`, test on its
    /// members.
    ///
    /// # Errors
    ///
    /// Returns [`WearableError::DegenerateSplit`] if the group is empty or
    /// covers every subject.
    pub fn split_by_group(&self, group: SubjectGroup) -> Result<(Dataset, Dataset)> {
        let members: Vec<usize> = self
            .subjects
            .iter()
            .filter(|s| group.contains(s))
            .map(|s| s.id)
            .collect();
        if members.is_empty() {
            return Err(WearableError::DegenerateSplit {
                reason: format!("group {} has no members", group.name()),
            });
        }
        self.split_by_subjects(&members)
    }

    /// The distinct subject ids present in the rows, ascending.
    pub fn distinct_subject_ids(&self) -> Vec<usize> {
        let mut ids = self.subject_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for &y in &self.y {
            counts[y] += 1;
        }
        counts
    }
}

/// Fits a [`Normalizer`] on `train` and applies it to both splits — the
/// leakage-free way to implement the paper's "normalization was applied".
///
/// # Errors
///
/// Propagates normalizer fitting errors (empty training split).
pub fn normalize_pair(train: &Dataset, test: &Dataset) -> Result<(Dataset, Dataset)> {
    let norm = Normalizer::fit(train.features())?;
    let mut train_out = train.clone();
    let mut test_out = test.clone();
    train_out.x = norm.apply(train.features());
    test_out.x = norm.apply(test.features());
    Ok((train_out, test_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::Handedness;

    fn toy(n_subjects: usize, rows_per_subject: usize) -> Dataset {
        let mut rng = Rng64::seed_from(1);
        let subjects: Vec<Subject> = (0..n_subjects)
            .map(|i| Subject::sample(i, 1.0, &mut rng))
            .collect();
        let n = n_subjects * rows_per_subject;
        let x = Matrix::random_uniform(n, 3, -1.0, 1.0, &mut rng);
        let y: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let subject_ids: Vec<usize> = (0..n).map(|i| i / rows_per_subject).collect();
        Dataset::new(
            "toy",
            x,
            y,
            subject_ids,
            subjects,
            vec!["f0".into(), "f1".into(), "f2".into()],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let x = Matrix::zeros(3, 2);
        assert!(Dataset::new("bad", x.clone(), vec![0, 1], vec![0, 0, 0], vec![], vec![]).is_err());
        assert!(Dataset::new("bad", x, vec![0, 1, 2], vec![0, 0, 0], vec![], vec![]).is_err());
    }

    #[test]
    fn subject_split_is_disjoint() {
        let data = toy(10, 6);
        let (train, test) = data.split_by_subjects(&[0, 3, 7]).unwrap();
        assert_eq!(test.len(), 3 * 6);
        assert_eq!(train.len(), 7 * 6);
        for sid in test.subject_ids() {
            assert!(!train.subject_ids().contains(sid));
        }
    }

    #[test]
    fn fraction_split_rounds_subjects() {
        let data = toy(10, 4);
        let (train, test) = data.split_by_subject_fraction(0.3, 5).unwrap();
        assert_eq!(test.distinct_subject_ids().len(), 3);
        assert_eq!(train.distinct_subject_ids().len(), 7);
    }

    #[test]
    fn fraction_split_is_deterministic() {
        let data = toy(8, 5);
        let (a_train, _) = data.split_by_subject_fraction(0.25, 9).unwrap();
        let (b_train, _) = data.split_by_subject_fraction(0.25, 9).unwrap();
        assert_eq!(a_train.subject_ids(), b_train.subject_ids());
    }

    #[test]
    fn degenerate_fraction_rejected() {
        let data = toy(4, 3);
        assert!(data.split_by_subject_fraction(0.0, 1).is_err());
        assert!(data.split_by_subject_fraction(1.0, 1).is_err());
    }

    #[test]
    fn group_split_tests_only_members() {
        let data = toy(30, 2);
        let group = SubjectGroup::LeftHanded;
        let (train, test) = data.split_by_group(group).unwrap();
        let left_ids: Vec<usize> = data
            .subjects()
            .iter()
            .filter(|s| s.handedness == Handedness::Left)
            .map(|s| s.id)
            .collect();
        for sid in test.subject_ids() {
            assert!(left_ids.contains(sid));
        }
        for sid in train.subject_ids() {
            assert!(!left_ids.contains(sid));
        }
    }

    #[test]
    fn class_counts_sum_to_len() {
        let data = toy(5, 6);
        assert_eq!(data.class_counts().iter().sum::<usize>(), data.len());
        assert_eq!(data.num_classes(), 3);
    }

    #[test]
    fn normalize_pair_uses_train_statistics() {
        let data = toy(10, 4);
        let (train, test) = data.split_by_subject_fraction(0.3, 2).unwrap();
        let (ntrain, ntest) = normalize_pair(&train, &test).unwrap();
        // Train columns are exactly standardized; test only approximately.
        for c in 0..ntrain.num_features() {
            let col: Vec<f64> = ntrain
                .features()
                .column(c)
                .iter()
                .map(|&v| v as f64)
                .collect();
            assert!(linalg::stats::mean(&col).abs() < 1e-4);
        }
        assert_eq!(ntest.len(), test.len());
    }

    #[test]
    fn select_preserves_roster() {
        let data = toy(6, 3);
        let subset = data.select(&[0, 5, 10]);
        assert_eq!(subset.len(), 3);
        assert_eq!(subset.subjects().len(), 6);
    }
}
