//! The paper's preprocessing pipeline.
//!
//! Section IV: "Datasets were preprocessed using a moving average filter
//! with a window size of 30, extracting statistical features such as
//! minimum, maximum, mean, and standard deviation. To address varying
//! ranges, normalization was applied to ensure consistent scaling."
//!
//! [`moving_average`] implements the filter, [`window_features`] the
//! statistics (optionally over several sub-segments per window, which is
//! how the wider Nurse/Stress-Predict feature vectors arise), and
//! [`Normalizer`] the train-fitted z-normalization.

use crate::error::{Result, WearableError};
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The paper's moving-average window size.
pub const PAPER_MA_WINDOW: usize = 30;

/// Causal moving average with the given window (the paper uses 30).
///
/// The first `window − 1` outputs average the samples seen so far, so the
/// output has the same length as the input.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(signal: &[f32], window: usize) -> Vec<f32> {
    assert!(window > 0, "moving average window must be positive");
    let mut out = Vec::with_capacity(signal.len());
    let mut acc = 0.0f64;
    for (i, &v) in signal.iter().enumerate() {
        acc += v as f64;
        if i >= window {
            acc -= signal[i - window] as f64;
        }
        let denom = (i + 1).min(window) as f64;
        out.push((acc / denom) as f32);
    }
    out
}

/// The four statistics extracted per (sub-)segment, in feature order.
pub const STATS_PER_SEGMENT: usize = 4;

/// Extracts `[min, max, mean, std]` per segment from a filtered signal,
/// splitting the window into `segments` equal parts (1 reproduces the plain
/// WESAD feature set; larger values give the wider Nurse/Stress-Predict
/// input vectors).
///
/// # Panics
///
/// Panics if `segments == 0` or the signal is shorter than `segments`.
pub fn window_features(signal: &[f32], segments: usize) -> Vec<f32> {
    assert!(segments > 0, "need at least one segment");
    assert!(
        signal.len() >= segments,
        "signal of {} samples cannot form {} segments",
        signal.len(),
        segments
    );
    let mut features = Vec::with_capacity(segments * STATS_PER_SEGMENT);
    let seg_len = signal.len() / segments;
    for s in 0..segments {
        let start = s * seg_len;
        let end = if s == segments - 1 {
            signal.len()
        } else {
            start + seg_len
        };
        let seg = &signal[start..end];
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &v in seg {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v as f64;
        }
        let mean = sum / seg.len() as f64;
        let var = seg
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / seg.len() as f64;
        features.push(lo);
        features.push(hi);
        features.push(mean as f32);
        features.push(var.sqrt() as f32);
    }
    features
}

/// Per-feature z-normalization fitted on training data and applied to any
/// split (never fit on test data — that leaks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits per-column mean and standard deviation on `x`.
    ///
    /// # Errors
    ///
    /// Returns [`WearableError::InvalidConfig`] for an empty matrix.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(WearableError::InvalidConfig {
                reason: "cannot fit a normalizer on empty data".into(),
            });
        }
        let n = x.rows() as f64;
        let mut mean = vec![0.0f64; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r).iter()) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; x.cols()];
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let d = x.at(r, c) as f64 - mean[c];
                var[c] += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt() as f32;
                // Constant features normalize to 0 rather than NaN.
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            std,
        })
    }

    /// Applies the fitted normalization, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "normalizer feature mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Number of features the normalizer was fitted on.
    pub fn num_features(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_smooths_constant() {
        let signal = vec![2.0; 50];
        let out = moving_average(&signal, 30);
        assert!(out.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn moving_average_reduces_variance() {
        let mut rng = linalg::Rng64::seed_from(1);
        let signal: Vec<f32> = (0..500).map(|_| rng.normal()).collect();
        let filtered = moving_average(&signal, 30);
        let var = |xs: &[f32]| {
            let v: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
            linalg::stats::variance(&v)
        };
        assert!(var(&filtered) < 0.2 * var(&signal));
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let signal = vec![1.0, -2.0, 3.5];
        assert_eq!(moving_average(&signal, 1), signal);
    }

    #[test]
    fn moving_average_tracks_step() {
        let mut signal = vec![0.0; 60];
        signal.extend(vec![10.0; 60]);
        let out = moving_average(&signal, 30);
        assert!(out[59] < 1.0);
        assert!((out[119] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn window_features_known_values() {
        let signal = vec![1.0, 2.0, 3.0, 4.0];
        let f = window_features(&signal, 1);
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], 1.0); // min
        assert_eq!(f[1], 4.0); // max
        assert_eq!(f[2], 2.5); // mean
        assert!((f[3] - 1.118034).abs() < 1e-5); // population std
    }

    #[test]
    fn segments_multiply_feature_count() {
        let signal: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(window_features(&signal, 1).len(), 4);
        assert_eq!(window_features(&signal, 4).len(), 16);
        // Segment means should ascend for a ramp.
        let f = window_features(&signal, 4);
        assert!(f[2] < f[6] && f[6] < f[10] && f[10] < f[14]);
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let mut rng = linalg::Rng64::seed_from(2);
        let x = Matrix::random_uniform(200, 5, -3.0, 7.0, &mut rng);
        let norm = Normalizer::fit(&x).unwrap();
        let z = norm.apply(&x);
        for c in 0..5 {
            let col: Vec<f64> = z.column(c).iter().map(|&v| v as f64).collect();
            assert!(linalg::stats::mean(&col).abs() < 1e-4);
            assert!((linalg::stats::std_dev(&col) - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn normalizer_handles_constant_columns() {
        let x = Matrix::filled(10, 3, 4.2);
        let norm = Normalizer::fit(&x).unwrap();
        let z = norm.apply(&x);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalizer_is_train_fitted() {
        // Applying train statistics to shifted test data must preserve the
        // shift (no re-fitting on test).
        let train = Matrix::filled(5, 1, 0.0);
        let test = Matrix::filled(5, 1, 10.0);
        let mut train_var = train.clone();
        train_var.set(0, 0, 1.0); // non-constant so std is real
        let norm = Normalizer::fit(&train_var).unwrap();
        let z = norm.apply(&test);
        assert!(z.at(0, 0) > 5.0, "shift must survive normalization");
    }

    #[test]
    fn normalizer_rejects_empty() {
        assert!(Normalizer::fit(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn normalizer_apply_checks_width() {
        let x = Matrix::filled(3, 2, 1.0);
        let norm = Normalizer::fit(&x).unwrap();
        norm.apply(&Matrix::filled(3, 5, 1.0));
    }
}
