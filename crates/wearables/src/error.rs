//! Error types for the `wearables` crate.

use std::error::Error as StdError;
use std::fmt;

/// Convenient alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, WearableError>;

/// Errors reported while synthesizing or splitting datasets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WearableError {
    /// A profile or split parameter was invalid.
    InvalidConfig {
        /// Human-readable description of the invalid parameter.
        reason: String,
    },
    /// A split would leave one side empty.
    DegenerateSplit {
        /// Human-readable description of the degenerate split.
        reason: String,
    },
}

impl fmt::Display for WearableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WearableError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            WearableError::DegenerateSplit { reason } => {
                write!(f, "degenerate split: {reason}")
            }
        }
    }
}

impl StdError for WearableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_reason() {
        let e = WearableError::DegenerateSplit {
            reason: "no test subjects".into(),
        };
        assert!(e.to_string().contains("no test subjects"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WearableError>();
    }
}
