//! Generative models of the wearable sensor channels.
//!
//! WESAD's devices record blood volume pulse (BVP), ECG, electrodermal
//! activity (EDA), EMG, respiration, skin temperature, and 3-axis
//! acceleration. Each generator here produces a raw window of one channel
//! from the latent [`PhysioParams`], with the morphology that makes the
//! downstream statistical features (min/max/mean/std) carry the same
//! information they carry in the real datasets:
//!
//! * **BVP** — a pulse train at the heart rate with beat-to-beat jitter set
//!   by HRV and a dicrotic second harmonic;
//! * **ECG** — sharp R-peaks on a flat baseline (same beat clock);
//! * **EDA** — slow tonic level plus phasic skin-conductance responses
//!   (Poisson arrivals, fast-rise/slow-decay kernels);
//! * **RESP** — breathing sinusoid with amplitude wander;
//! * **TEMP** — baseline with a slow random walk;
//! * **ACC** — Ornstein–Uhlenbeck motion noise scaled by activity level;
//! * **EMG** — zero-mean noise whose envelope follows muscle tone.

use crate::affect::PhysioParams;
use linalg::Rng64;

/// Sampling rate of every generated channel (Hz). Real devices sample
/// faster, but feature extraction only consumes window statistics, which
/// converge well below this rate.
pub const SAMPLE_RATE_HZ: f32 = 16.0;

/// The sensor channels in dataset column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Blood volume pulse (wrist PPG).
    Bvp,
    /// Electrocardiogram (chest).
    Ecg,
    /// Electrodermal activity / skin conductance.
    Eda,
    /// Electromyogram.
    Emg,
    /// Respiration.
    Resp,
    /// Skin temperature.
    Temp,
    /// Accelerometer magnitude (norm of the 3 axes).
    AccMag,
    /// Accelerometer vertical axis.
    AccZ,
}

impl Channel {
    /// All channels in column order.
    pub const ALL: [Channel; 8] = [
        Channel::Bvp,
        Channel::Ecg,
        Channel::Eda,
        Channel::Emg,
        Channel::Resp,
        Channel::Temp,
        Channel::AccMag,
        Channel::AccZ,
    ];

    /// Short name used in feature labels.
    pub fn name(self) -> &'static str {
        match self {
            Channel::Bvp => "BVP",
            Channel::Ecg => "ECG",
            Channel::Eda => "EDA",
            Channel::Emg => "EMG",
            Channel::Resp => "RESP",
            Channel::Temp => "TEMP",
            Channel::AccMag => "ACC",
            Channel::AccZ => "ACCZ",
        }
    }
}

/// Generates one window of every channel; returns `channels × samples`.
pub fn generate_window(
    params: &PhysioParams,
    samples: usize,
    noise: f32,
    rng: &mut Rng64,
) -> Vec<Vec<f32>> {
    // One shared beat clock so BVP and ECG stay physiologically coupled.
    let beats = beat_train(params, samples, rng);
    Channel::ALL
        .iter()
        .map(|&c| generate_channel(c, params, samples, noise, &beats, rng))
        .collect()
}

/// Generates one window of a single channel.
pub fn generate_channel(
    channel: Channel,
    params: &PhysioParams,
    samples: usize,
    noise: f32,
    beats: &[f32],
    rng: &mut Rng64,
) -> Vec<f32> {
    let mut out = match channel {
        Channel::Bvp => bvp(beats, samples),
        Channel::Ecg => ecg(beats, samples),
        Channel::Eda => eda(params, samples, rng),
        Channel::Emg => emg(params, samples, rng),
        Channel::Resp => resp(params, samples, rng),
        Channel::Temp => temp(params, samples, rng),
        Channel::AccMag => acc(params, samples, 1.0, rng),
        Channel::AccZ => acc(params, samples, 0.6, rng),
    };
    if noise > 0.0 {
        for v in &mut out {
            *v += rng.normal_with(0.0, noise);
        }
    }
    out
}

/// Beat phase accumulator: `beats[t] ∈ [0, 1)` is the phase within the
/// current cardiac cycle; resets at each beat. Beat-to-beat interval jitters
/// with the HRV parameter.
pub fn beat_train(params: &PhysioParams, samples: usize, rng: &mut Rng64) -> Vec<f32> {
    let mut phases = Vec::with_capacity(samples);
    let mut phase = rng.uniform();
    let base_interval = 60.0 / params.heart_rate; // seconds per beat
    let mut interval = jittered_interval(base_interval, params.hrv, rng);
    for _ in 0..samples {
        phases.push(phase);
        phase += 1.0 / (interval * SAMPLE_RATE_HZ);
        if phase >= 1.0 {
            phase -= phase.floor();
            interval = jittered_interval(base_interval, params.hrv, rng);
        }
    }
    phases
}

fn jittered_interval(base: f32, hrv: f32, rng: &mut Rng64) -> f32 {
    (base + rng.normal_with(0.0, hrv)).max(0.25)
}

fn bvp(beats: &[f32], samples: usize) -> Vec<f32> {
    debug_assert_eq!(beats.len(), samples);
    beats
        .iter()
        .map(|&p| {
            let main = (std::f32::consts::TAU * p).sin();
            let dicrotic = 0.35 * (2.0 * std::f32::consts::TAU * p + 0.8).sin();
            main + dicrotic
        })
        .collect()
}

fn ecg(beats: &[f32], samples: usize) -> Vec<f32> {
    debug_assert_eq!(beats.len(), samples);
    beats
        .iter()
        .map(|&p| {
            // Narrow Gaussian R-peak at phase 0.1, small T-wave at 0.45.
            let r = (-((p - 0.10) * (p - 0.10)) / (2.0 * 0.0009)).exp();
            let t = 0.25 * (-((p - 0.45) * (p - 0.45)) / (2.0 * 0.004)).exp();
            1.2 * r + t - 0.05
        })
        .collect()
}

fn eda(params: &PhysioParams, samples: usize, rng: &mut Rng64) -> Vec<f32> {
    let mut out = vec![params.eda_tonic; samples];
    // Slow tonic drift.
    let mut drift = 0.0f32;
    for v in out.iter_mut() {
        drift += rng.normal_with(0.0, 0.002);
        *v += drift;
    }
    // Phasic SCRs: Poisson arrivals at scr_rate per minute; each response is
    // a fast-rise / slow-decay bump lasting a few seconds.
    let per_sample_rate = params.scr_rate / 60.0 / SAMPLE_RATE_HZ;
    for t in 0..samples {
        if rng.chance(per_sample_rate as f64) {
            let amplitude = 0.25 + 0.4 * rng.uniform();
            let rise = (0.7 * SAMPLE_RATE_HZ) as usize; // ~0.7 s rise
            let decay = (3.0 * SAMPLE_RATE_HZ) as usize; // ~3 s decay
            for (k, v) in out.iter_mut().enumerate().skip(t) {
                let dt = k - t;
                let shape = if dt < rise {
                    dt as f32 / rise as f32
                } else {
                    (-((dt - rise) as f32) / decay as f32).exp()
                };
                *v += amplitude * shape;
                if dt > rise + 4 * decay {
                    break;
                }
            }
        }
    }
    out
}

fn emg(params: &PhysioParams, samples: usize, rng: &mut Rng64) -> Vec<f32> {
    (0..samples)
        .map(|_| rng.normal_with(0.0, 0.1 + 0.12 * params.emg_tone))
        .collect()
}

fn resp(params: &PhysioParams, samples: usize, rng: &mut Rng64) -> Vec<f32> {
    let freq = params.resp_rate / 60.0; // Hz
    let mut amp = 1.0f32;
    (0..samples)
        .map(|t| {
            amp = (amp + rng.normal_with(0.0, 0.01)).clamp(0.6, 1.4);
            amp * (std::f32::consts::TAU * freq * t as f32 / SAMPLE_RATE_HZ).sin()
        })
        .collect()
}

fn temp(params: &PhysioParams, samples: usize, rng: &mut Rng64) -> Vec<f32> {
    let mut level = params.temperature;
    (0..samples)
        .map(|_| {
            level += rng.normal_with(0.0, 0.003);
            level
        })
        .collect()
}

fn acc(params: &PhysioParams, samples: usize, axis_gain: f32, rng: &mut Rng64) -> Vec<f32> {
    // Ornstein–Uhlenbeck around the gravity offset: correlated motion noise.
    let theta = 0.15f32;
    let sigma = params.motion * axis_gain;
    let mut v = 0.0f32;
    (0..samples)
        .map(|_| {
            v += -theta * v + rng.normal_with(0.0, sigma * 0.3);
            1.0 * axis_gain + v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affect::AffectState;
    use linalg::stats;

    fn window(params: &PhysioParams, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng64::seed_from(seed);
        generate_window(params, 480, 0.01, &mut rng)
    }

    fn channel_stats(w: &[Vec<f32>], c: Channel) -> (f64, f64) {
        let idx = Channel::ALL.iter().position(|&x| x == c).unwrap();
        let xs: Vec<f64> = w[idx].iter().map(|&v| v as f64).collect();
        (stats::mean(&xs), stats::std_dev(&xs))
    }

    #[test]
    fn window_has_all_channels_and_lengths() {
        let w = window(&PhysioParams::resting(), 1);
        assert_eq!(w.len(), 8);
        assert!(w.iter().all(|c| c.len() == 480));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = window(&PhysioParams::resting(), 7);
        let b = window(&PhysioParams::resting(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn stress_raises_eda_mean() {
        let base = PhysioParams::resting();
        let stressed = base.with_state(AffectState::Stress, 1.0, 1.0);
        // Average over several windows to suppress SCR shot noise.
        let mean_of = |p: &PhysioParams| {
            (0..5)
                .map(|s| channel_stats(&window(p, 100 + s), Channel::Eda).0)
                .sum::<f64>()
                / 5.0
        };
        assert!(mean_of(&stressed) > mean_of(&base));
    }

    #[test]
    fn stress_lowers_temperature() {
        let base = PhysioParams::resting();
        let stressed = base.with_state(AffectState::Stress, 1.0, 1.0);
        let t_base = channel_stats(&window(&base, 3), Channel::Temp).0;
        let t_stress = channel_stats(&window(&stressed, 3), Channel::Temp).0;
        assert!(t_stress < t_base);
    }

    #[test]
    fn higher_heart_rate_means_more_beats() {
        let mut fast = PhysioParams::resting();
        fast.heart_rate = 150.0;
        let slow = PhysioParams::resting();
        let count_beats = |p: &PhysioParams| {
            let mut rng = Rng64::seed_from(5);
            let phases = beat_train(p, 960, &mut rng);
            phases.windows(2).filter(|w| w[1] < w[0]).count()
        };
        assert!(count_beats(&fast) > count_beats(&slow));
    }

    #[test]
    fn emg_envelope_follows_tone() {
        let mut tense = PhysioParams::resting();
        tense.emg_tone = 4.0;
        let calm = PhysioParams::resting();
        let std_of = |p: &PhysioParams| channel_stats(&window(p, 9), Channel::Emg).1;
        assert!(std_of(&tense) > std_of(&calm));
    }

    #[test]
    fn motion_scales_acc_variance() {
        let mut moving = PhysioParams::resting();
        moving.motion = 1.5;
        let still = PhysioParams::resting();
        let std_of = |p: &PhysioParams| channel_stats(&window(p, 11), Channel::AccMag).1;
        assert!(std_of(&moving) > std_of(&still));
    }

    #[test]
    fn ecg_peaks_are_sparse_and_positive() {
        let w = window(&PhysioParams::resting(), 13);
        let idx = Channel::ALL
            .iter()
            .position(|&x| x == Channel::Ecg)
            .unwrap();
        let ecg = &w[idx];
        let above_one = ecg.iter().filter(|&&v| v > 1.0).count() as f32 / ecg.len() as f32;
        assert!(
            above_one > 0.005 && above_one < 0.2,
            "R-peak duty cycle {above_one}"
        );
    }

    #[test]
    fn resp_oscillates_around_zero() {
        let w = window(&PhysioParams::resting(), 15);
        let (mean, std) = channel_stats(&w, Channel::Resp);
        assert!(mean.abs() < 0.3);
        assert!(std > 0.3);
    }

    #[test]
    fn channel_names_unique() {
        let mut names: Vec<&str> = Channel::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
