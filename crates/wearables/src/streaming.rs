//! Continuous-monitoring window stream: the serving-side view of the
//! wearable substrate.
//!
//! [`crate::profiles::generate`] materializes a whole labeled dataset up
//! front — the *training* view. A deployed monitor instead sees an endless
//! sequence of sliding windows per wearer: raw multichannel signal arrives,
//! is filtered, featurized, and handed to the classifier one window at a
//! time. [`WindowStream`] reproduces that view over the same generative
//! models, subjects, preprocessing, and feature layout as the dataset path,
//! so a model trained on [`crate::Dataset`] features can serve the stream
//! without any adapter.
//!
//! Each subject cycles through the affective states; within a
//! (subject, state) episode one continuous multichannel record is
//! synthesized and windows slide across it with a configurable hop — the
//! `subjects × signals → preprocess → window` pipeline, lazily.
//!
//! # Example
//!
//! ```
//! use wearables::profiles::{self, DatasetProfile};
//! use wearables::streaming::WindowStream;
//!
//! let profile = DatasetProfile { subjects: 2, windows_per_state: 3, ..profiles::wesad_like() };
//! let stream = WindowStream::new(&profile, profile.window_samples / 2, 7)?;
//! let windows: Vec<_> = stream.collect();
//! assert_eq!(windows.len(), 2 * 3 * 3); // subjects × states × windows
//! assert!(windows.iter().all(|w| w.features.len() == 32));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::affect::AffectState;
use crate::error::{Result, WearableError};
use crate::preprocess::{moving_average, window_features, STATS_PER_SEGMENT};
use crate::profiles::{window_jitter, DatasetProfile};
use crate::signals::{self, Channel};
use crate::subject::Subject;
use linalg::Rng64;

/// One preprocessed sliding window pulled off the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedWindow {
    /// The wearer this window came from.
    pub subject_id: usize,
    /// The (possibly noise-corrupted) label, matching the dataset path's
    /// label-noise semantics.
    pub label: usize,
    /// The ground-truth affective state the episode was generated under.
    pub state: AffectState,
    /// Un-normalized features in the dataset layout
    /// (`channels × segments × [min, max, mean, std]`). Apply the training
    /// split's [`crate::preprocess::Normalizer`] before classifying.
    pub features: Vec<f32>,
}

/// Lazy iterator over sliding windows for a whole cohort; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct WindowStream {
    profile: DatasetProfile,
    hop: usize,
    subjects: Vec<Subject>,
    rng: Rng64,
    /// Cursor: (subject index, state index, window index within episode).
    subject_idx: usize,
    state_idx: usize,
    window_idx: usize,
    /// The current episode's continuous record, one `Vec` per channel.
    record: Vec<Vec<f32>>,
}

impl WindowStream {
    /// Creates a stream over `profile`'s cohort with windows sliding by
    /// `hop_samples`. Each (subject, state) episode is one continuous
    /// record of `window_samples + (windows_per_state − 1) · hop_samples`
    /// raw samples, yielding exactly `windows_per_state` windows, so the
    /// stream ends after `subjects × states × windows_per_state` items.
    ///
    /// # Errors
    ///
    /// Returns [`WearableError::InvalidConfig`] for zero subjects, windows,
    /// hop, or segments, or a window too short for the segment count.
    pub fn new(profile: &DatasetProfile, hop_samples: usize, seed: u64) -> Result<Self> {
        if profile.subjects == 0 || profile.windows_per_state == 0 {
            return Err(WearableError::InvalidConfig {
                reason: "stream needs at least one subject and one window per state".into(),
            });
        }
        if hop_samples == 0 {
            return Err(WearableError::InvalidConfig {
                reason: "window hop must be positive".into(),
            });
        }
        if profile.segments == 0 || profile.window_samples < profile.segments {
            return Err(WearableError::InvalidConfig {
                reason: format!(
                    "{} samples cannot form {} segments",
                    profile.window_samples, profile.segments
                ),
            });
        }
        if profile.ma_window == 0 {
            return Err(WearableError::InvalidConfig {
                reason: "moving-average window must be positive".into(),
            });
        }
        let mut rng = Rng64::seed_from(seed);
        let subjects: Vec<Subject> = (0..profile.subjects)
            .map(|i| Subject::sample(i, profile.subject_variability, &mut rng))
            .collect();
        let mut stream = Self {
            profile: profile.clone(),
            hop: hop_samples,
            subjects,
            rng,
            subject_idx: 0,
            state_idx: 0,
            window_idx: 0,
            record: Vec::new(),
        };
        stream.generate_episode();
        Ok(stream)
    }

    /// Number of features every streamed window carries (the dataset
    /// layout: channels × segments × stats).
    pub fn num_features(&self) -> usize {
        Channel::ALL.len() * self.profile.segments * STATS_PER_SEGMENT
    }

    /// Windows remaining in the stream (it is finite: one pass over the
    /// cohort's episodes).
    pub fn remaining(&self) -> usize {
        let per_episode = self.profile.windows_per_state;
        let states = AffectState::ALL.len();
        let done_episodes = self.subject_idx * states + self.state_idx;
        let total_episodes = self.profile.subjects * states;
        (total_episodes - done_episodes) * per_episode - self.window_idx
    }

    /// Raw samples in one episode's record.
    fn episode_samples(&self) -> usize {
        self.profile.window_samples + (self.profile.windows_per_state - 1) * self.hop
    }

    /// Synthesizes the continuous record for the current (subject, state)
    /// episode.
    fn generate_episode(&mut self) {
        let subject = &self.subjects[self.subject_idx];
        let state = AffectState::ALL[self.state_idx];
        let params = subject.baseline.with_state(
            state,
            self.profile.state_separation,
            subject.response_gain,
        );
        let params = window_jitter(params, &mut self.rng);
        self.record = signals::generate_window(
            &params,
            self.episode_samples(),
            self.profile.sensor_noise,
            &mut self.rng,
        );
    }

    /// Advances the cursor past the just-emitted window, regenerating the
    /// record on episode boundaries.
    fn advance(&mut self) {
        self.window_idx += 1;
        if self.window_idx < self.profile.windows_per_state {
            return;
        }
        self.window_idx = 0;
        self.state_idx += 1;
        if self.state_idx == AffectState::ALL.len() {
            self.state_idx = 0;
            self.subject_idx += 1;
        }
        if self.subject_idx < self.subjects.len() {
            self.generate_episode();
        }
    }
}

impl Iterator for WindowStream {
    type Item = StreamedWindow;

    fn next(&mut self) -> Option<StreamedWindow> {
        if self.subject_idx >= self.subjects.len() {
            return None;
        }
        let state = AffectState::ALL[self.state_idx];
        let start = self.window_idx * self.hop;
        let end = start + self.profile.window_samples;
        // Preprocess exactly like the dataset path: moving-average filter
        // over the window, then per-segment [min, max, mean, std].
        let mut features = Vec::with_capacity(self.num_features());
        for channel in &self.record {
            let filtered = moving_average(&channel[start..end], self.profile.ma_window);
            features.extend(window_features(&filtered, self.profile.segments));
        }
        let label = if self.rng.chance(self.profile.label_noise) {
            let mut other = self.rng.below(AffectState::ALL.len() - 1);
            if other >= state.label() {
                other += 1;
            }
            other
        } else {
            state.label()
        };
        let window = StreamedWindow {
            subject_id: self.subjects[self.subject_idx].id,
            label,
            state,
            features,
        };
        self.advance();
        Some(window)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn tiny() -> DatasetProfile {
        DatasetProfile {
            subjects: 3,
            windows_per_state: 4,
            window_samples: 160,
            ..profiles::wesad_like()
        }
    }

    #[test]
    fn stream_yields_cohort_times_states_times_windows() {
        let stream = WindowStream::new(&tiny(), 80, 1).unwrap();
        assert_eq!(stream.remaining(), 3 * 3 * 4);
        let windows: Vec<_> = stream.collect();
        assert_eq!(windows.len(), 3 * 3 * 4);
        for w in &windows {
            assert_eq!(w.features.len(), 8 * STATS_PER_SEGMENT);
            assert!(w.features.iter().all(|v| v.is_finite()));
            assert!(w.label < 3);
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<_> = WindowStream::new(&tiny(), 80, 9).unwrap().collect();
        let b: Vec<_> = WindowStream::new(&tiny(), 80, 9).unwrap().collect();
        assert_eq!(a, b);
        let c: Vec<_> = WindowStream::new(&tiny(), 80, 10).unwrap().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn overlapping_windows_share_signal() {
        // With hop < window, consecutive windows of one episode overlap, so
        // their features should correlate far more than across states.
        let profile = DatasetProfile {
            subjects: 1,
            windows_per_state: 2,
            window_samples: 160,
            sensor_noise: 0.0,
            ..profiles::wesad_like()
        };
        let windows: Vec<_> = WindowStream::new(&profile, 16, 3).unwrap().collect();
        assert_eq!(windows.len(), 6);
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let within = dist(&windows[0].features, &windows[1].features);
        let across = dist(&windows[0].features, &windows[4].features);
        assert!(within < across, "within {within} !< across {across}");
    }

    #[test]
    fn size_hint_tracks_iteration() {
        let mut stream = WindowStream::new(&tiny(), 80, 5).unwrap();
        let total = stream.remaining();
        stream.next();
        stream.next();
        assert_eq!(stream.remaining(), total - 2);
        assert_eq!(stream.size_hint(), (total - 2, Some(total - 2)));
        assert_eq!(stream.count(), total - 2);
    }

    #[test]
    fn every_subject_and_state_appears() {
        let windows: Vec<_> = WindowStream::new(&tiny(), 160, 6).unwrap().collect();
        for sid in 0..3 {
            assert!(windows.iter().any(|w| w.subject_id == sid));
        }
        for state in AffectState::ALL {
            assert!(windows.iter().any(|w| w.state == state));
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut p = tiny();
        p.subjects = 0;
        assert!(WindowStream::new(&p, 80, 0).is_err());
        assert!(WindowStream::new(&tiny(), 0, 0).is_err(), "zero hop");
        let mut p = tiny();
        p.segments = 0;
        assert!(WindowStream::new(&p, 80, 0).is_err());
        let mut p = tiny();
        p.ma_window = 0;
        assert!(WindowStream::new(&p, 80, 0).is_err());
    }

    #[test]
    fn streamed_features_live_in_dataset_feature_space() {
        // A nearest-centroid rule fitted on the dataset path must beat
        // chance on streamed windows — the two views share one feature
        // space (layout and distribution).
        let profile = DatasetProfile {
            subjects: 5,
            windows_per_state: 10,
            window_samples: 240,
            ..profiles::wesad_like()
        };
        let data = profiles::generate(&profile, 11).unwrap();
        let k = data.num_classes();
        let f = data.num_features();
        let mut centroids = vec![vec![0.0f64; f]; k];
        let mut counts = vec![0usize; k];
        for (i, &label) in data.labels().iter().enumerate() {
            for (c, &v) in centroids[label].iter_mut().zip(data.features().row(i)) {
                *c += v as f64;
            }
            counts[label] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= (*n).max(1) as f64;
            }
        }
        let windows: Vec<_> = WindowStream::new(&profile, 240, 12).unwrap().collect();
        let mut correct = 0usize;
        for w in &windows {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                let d: f64 = w
                    .features
                    .iter()
                    .zip(c.iter())
                    .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            if best == w.state.label() {
                correct += 1;
            }
        }
        let acc = correct as f64 / windows.len() as f64;
        assert!(acc > 0.5, "cross-view nearest-centroid accuracy {acc}");
    }
}
