//! Subjects: demographic attributes and individual physiology.
//!
//! The paper's Table III evaluates "person-specific" reliability by
//! stratifying WESAD's subjects on hand preference, gender, age, and height
//! and measuring per-group accuracy. Our synthetic subjects carry the same
//! attributes, and their *latent physiology* correlates with them the way
//! real cohorts do (age ↓ HRV, height ↑ baseline HR offset in our simple
//! model, etc.), so group-wise splits genuinely shift the data distribution
//! rather than being arbitrary relabelings.

use crate::affect::PhysioParams;
use linalg::Rng64;
use serde::{Deserialize, Serialize};

/// Dominant hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Handedness {
    /// Right-handed (the majority).
    Right,
    /// Left-handed (~15% of the population; the paper's first group).
    Left,
}

/// Subject sex as recorded in the dataset metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sex {
    /// Male.
    Male,
    /// Female.
    Female,
}

/// One study participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subject {
    /// Stable identifier, unique within a dataset.
    pub id: usize,
    /// Dominant hand.
    pub handedness: Handedness,
    /// Sex.
    pub sex: Sex,
    /// Age in years.
    pub age: u32,
    /// Height in centimeters.
    pub height_cm: u32,
    /// Baseline physiology for this person (their "neutral" operating
    /// point).
    pub baseline: PhysioParams,
    /// How strongly this person's physiology responds to affective state
    /// (1.0 = population average).
    pub response_gain: f32,
}

impl Subject {
    /// Samples a random subject with correlated attributes and physiology.
    ///
    /// `variability` scales how far individual baselines scatter around the
    /// population mean — the dataset-difficulty knob that makes
    /// leave-subject-out splits hard.
    pub fn sample(id: usize, variability: f32, rng: &mut Rng64) -> Self {
        let handedness = if rng.chance(0.2) {
            Handedness::Left
        } else {
            Handedness::Right
        };
        let sex = if rng.chance(0.45) {
            Sex::Female
        } else {
            Sex::Male
        };
        let age = (22.0 + rng.uniform() * 16.0) as u32; // 22..38, WESAD-like cohort
        let height_cm = match sex {
            Sex::Male => (170.0 + rng.normal_with(8.0, 7.0)) as u32,
            Sex::Female => (160.0 + rng.normal_with(6.0, 7.0)) as u32,
        };

        let v = variability;
        let mut baseline = PhysioParams::resting();
        baseline.heart_rate +=
            rng.normal_with(0.0, 7.0 * v) + if sex == Sex::Female { 3.0 } else { 0.0 };
        // HRV declines with age in real cohorts; mirror that so age-based
        // groups are physiologically distinct.
        baseline.hrv += rng.normal_with(0.0, 0.012 * v) - 0.0008 * (age as f32 - 28.0);
        baseline.eda_tonic *= (1.0 + rng.normal_with(0.0, 0.35 * v)).max(0.1);
        baseline.scr_rate += rng.normal_with(0.0, 0.8 * v);
        baseline.resp_rate += rng.normal_with(0.0, 1.5 * v);
        baseline.temperature += rng.normal_with(0.0, 0.5 * v);
        // Taller subjects carry a small resting-HR offset in our model.
        baseline.heart_rate -= 0.08 * (height_cm as f32 - 170.0);
        baseline.motion += rng.normal_with(0.0, 0.04 * v).max(-0.1);
        baseline.emg_tone *= (1.0 + rng.normal_with(0.0, 0.25 * v)).max(0.2);
        let baseline = baseline.clamped();

        let response_gain = (1.0 + rng.normal_with(0.0, 0.25 * v)).clamp(0.3, 2.5);

        Self {
            id,
            handedness,
            sex,
            age,
            height_cm,
            baseline,
            response_gain,
        }
    }
}

/// The subject strata of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubjectGroup {
    /// Left-handed subjects.
    LeftHanded,
    /// Female subjects.
    Female,
    /// Subjects aged at most the given years (paper: 25).
    AgeAtMost(u32),
    /// Subjects aged at least the given years (paper: 30).
    AgeAtLeast(u32),
    /// Subjects at most the given height in cm (paper: 170).
    HeightAtMost(u32),
    /// Subjects at least the given height in cm (paper: 185).
    HeightAtLeast(u32),
}

impl SubjectGroup {
    /// The six groups of Table III, in column order.
    pub fn table3_groups() -> [SubjectGroup; 6] {
        [
            SubjectGroup::LeftHanded,
            SubjectGroup::Female,
            SubjectGroup::AgeAtMost(25),
            SubjectGroup::AgeAtLeast(30),
            SubjectGroup::HeightAtMost(170),
            SubjectGroup::HeightAtLeast(185),
        ]
    }

    /// Whether `subject` belongs to this group.
    pub fn contains(&self, subject: &Subject) -> bool {
        match *self {
            SubjectGroup::LeftHanded => subject.handedness == Handedness::Left,
            SubjectGroup::Female => subject.sex == Sex::Female,
            SubjectGroup::AgeAtMost(limit) => subject.age <= limit,
            SubjectGroup::AgeAtLeast(limit) => subject.age >= limit,
            SubjectGroup::HeightAtMost(limit) => subject.height_cm <= limit,
            SubjectGroup::HeightAtLeast(limit) => subject.height_cm >= limit,
        }
    }

    /// Display name matching the paper's column headers.
    pub fn name(&self) -> String {
        match *self {
            SubjectGroup::LeftHanded => "Left hands".into(),
            SubjectGroup::Female => "Female".into(),
            SubjectGroup::AgeAtMost(l) => format!("Age <= {l}"),
            SubjectGroup::AgeAtLeast(l) => format!("Age >= {l}"),
            SubjectGroup::HeightAtMost(l) => format!("Height <= {l}"),
            SubjectGroup::HeightAtLeast(l) => format!("Height >= {l}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort(n: usize, seed: u64) -> Vec<Subject> {
        let mut rng = Rng64::seed_from(seed);
        (0..n).map(|i| Subject::sample(i, 1.0, &mut rng)).collect()
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = cohort(10, 3);
        let b = cohort(10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn attributes_are_plausible() {
        for s in cohort(100, 1) {
            assert!((22..=38).contains(&s.age));
            assert!((130..=210).contains(&s.height_cm));
            assert!(s.baseline.heart_rate >= 40.0 && s.baseline.heart_rate <= 190.0);
            assert!(s.response_gain > 0.0);
        }
    }

    #[test]
    fn cohort_contains_both_sexes_and_handedness() {
        let subjects = cohort(60, 2);
        assert!(subjects.iter().any(|s| s.sex == Sex::Female));
        assert!(subjects.iter().any(|s| s.sex == Sex::Male));
        assert!(subjects.iter().any(|s| s.handedness == Handedness::Left));
        assert!(subjects.iter().any(|s| s.handedness == Handedness::Right));
    }

    #[test]
    fn groups_partition_sensibly() {
        let subjects = cohort(100, 4);
        for group in SubjectGroup::table3_groups() {
            let members = subjects.iter().filter(|s| group.contains(s)).count();
            assert!(
                members > 0,
                "group {} is empty in a 100-person cohort",
                group.name()
            );
            assert!(members < 100, "group {} swallowed everyone", group.name());
        }
    }

    #[test]
    fn age_groups_are_exclusive_between_bounds() {
        let subjects = cohort(50, 5);
        let young = SubjectGroup::AgeAtMost(25);
        let old = SubjectGroup::AgeAtLeast(30);
        for s in &subjects {
            assert!(!(young.contains(s) && old.contains(s)));
        }
    }

    #[test]
    fn variability_widens_baselines() {
        let narrow: Vec<f64> = cohort(200, 6)
            .iter()
            .map(|s| s.baseline.heart_rate as f64)
            .collect();
        let mut rng = Rng64::seed_from(6);
        let wide: Vec<f64> = (0..200)
            .map(|i| Subject::sample(i, 3.0, &mut rng).baseline.heart_rate as f64)
            .collect();
        assert!(linalg::stats::std_dev(&wide) > linalg::stats::std_dev(&narrow));
    }

    #[test]
    fn group_names_match_paper_headers() {
        let names: Vec<String> = SubjectGroup::table3_groups()
            .iter()
            .map(|g| g.name())
            .collect();
        assert_eq!(names[0], "Left hands");
        assert_eq!(names[2], "Age <= 25");
        assert_eq!(names[5], "Height >= 185");
    }
}
