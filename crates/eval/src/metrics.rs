//! Classification metrics.
//!
//! The paper reports plain accuracy for Tables I and III, and switches to
//! *macro accuracy* (mean per-class recall) for the imbalance experiment
//! (Figure 7) "to ensure a fair performance evaluation that the varying
//! sample counts per class do not skew".

use linalg::Matrix;

/// Fraction of predictions equal to the truth.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(preds: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(preds.len(), truth.len(), "prediction/label length mismatch");
    assert!(!preds.is_empty(), "accuracy of an empty prediction set");
    preds.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / preds.len() as f64
}

/// Per-class recall (`correct_c / count_c`); classes absent from `truth`
/// report recall 0.
///
/// # Panics
///
/// Panics if the slices have different lengths or a label exceeds
/// `num_classes`.
pub fn per_class_recall(preds: &[usize], truth: &[usize], num_classes: usize) -> Vec<f64> {
    assert_eq!(preds.len(), truth.len(), "prediction/label length mismatch");
    let mut correct = vec![0usize; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (&p, &t) in preds.iter().zip(truth) {
        assert!(t < num_classes, "label {t} out of range");
        counts[t] += 1;
        if p == t {
            correct[t] += 1;
        }
    }
    correct
        .iter()
        .zip(&counts)
        .map(|(&c, &n)| if n == 0 { 0.0 } else { c as f64 / n as f64 })
        .collect()
}

/// Macro accuracy: the unweighted mean of per-class recalls, over the
/// classes that actually appear in `truth`.
///
/// # Panics
///
/// As [`per_class_recall`].
pub fn macro_accuracy(preds: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    let recalls = per_class_recall(preds, truth, num_classes);
    let mut present = vec![false; num_classes];
    for &t in truth {
        present[t] = true;
    }
    let (sum, n) = recalls
        .iter()
        .zip(&present)
        .filter(|(_, &p)| p)
        .fold((0.0, 0usize), |(s, n), (&r, _)| (s + r, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Macro-F1: the unweighted mean of per-class F1 scores
/// (`2·precision·recall / (precision + recall)`), over the classes that
/// actually appear in `truth`. A class with no predicted and no true
/// positives scores F1 = 0 — the campaign engine's headline skew-fairness
/// metric, stricter than [`macro_accuracy`] because it also punishes
/// false positives.
///
/// # Panics
///
/// Panics if the slices have different lengths or a label exceeds
/// `num_classes`.
pub fn macro_f1(preds: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    assert_eq!(preds.len(), truth.len(), "prediction/label length mismatch");
    let mut tp = vec![0usize; num_classes];
    let mut pred_count = vec![0usize; num_classes];
    let mut true_count = vec![0usize; num_classes];
    for (&p, &t) in preds.iter().zip(truth) {
        assert!(p < num_classes && t < num_classes, "label out of range");
        pred_count[p] += 1;
        true_count[t] += 1;
        if p == t {
            tp[t] += 1;
        }
    }
    let (mut sum, mut present) = (0.0f64, 0usize);
    for c in 0..num_classes {
        if true_count[c] == 0 {
            continue;
        }
        present += 1;
        let denom = (pred_count[c] + true_count[c]) as f64;
        if denom > 0.0 {
            sum += 2.0 * tp[c] as f64 / denom;
        }
    }
    if present == 0 {
        0.0
    } else {
        sum / present as f64
    }
}

/// Confusion matrix with `truth` on rows and `preds` on columns.
///
/// # Panics
///
/// Panics on length mismatch or out-of-range labels.
pub fn confusion_matrix(preds: &[usize], truth: &[usize], num_classes: usize) -> Matrix {
    assert_eq!(preds.len(), truth.len(), "prediction/label length mismatch");
    let mut m = Matrix::zeros(num_classes, num_classes);
    for (&p, &t) in preds.iter().zip(truth) {
        assert!(p < num_classes && t < num_classes, "label out of range");
        let v = m.at(t, p);
        m.set(t, p, v + 1.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_accuracy() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
    }

    #[test]
    fn chance_accuracy() {
        assert_eq!(accuracy(&[0, 0, 0, 0], &[0, 1, 2, 1]), 0.25);
    }

    #[test]
    fn macro_accuracy_is_imbalance_fair() {
        // 90 samples of class 0 all right, 10 of class 1 all wrong:
        // plain accuracy 0.9, macro accuracy 0.5.
        let mut truth = vec![0usize; 90];
        truth.extend(vec![1usize; 10]);
        let preds = vec![0usize; 100];
        assert!((accuracy(&preds, &truth) - 0.9).abs() < 1e-12);
        assert!((macro_accuracy(&preds, &truth, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn macro_ignores_absent_classes() {
        let truth = [0, 0, 1, 1];
        let preds = [0, 0, 1, 1];
        // Class 2 never appears; macro over present classes only.
        assert_eq!(macro_accuracy(&preds, &truth, 3), 1.0);
    }

    #[test]
    fn per_class_recall_basics() {
        let truth = [0, 0, 1, 1, 2];
        let preds = [0, 1, 1, 1, 0];
        let r = per_class_recall(&preds, &truth, 3);
        assert_eq!(r, vec![0.5, 1.0, 0.0]);
    }

    #[test]
    fn macro_f1_basics() {
        // Perfect predictions: F1 = 1 per class.
        assert_eq!(macro_f1(&[0, 1, 2], &[0, 1, 2], 3), 1.0);
        // All-majority predictions: class 0 has precision 0.9 / recall 1
        // (F1 ≈ 0.947), class 1 has F1 = 0 → macro ≈ 0.474.
        let mut truth = vec![0usize; 90];
        truth.extend(vec![1usize; 10]);
        let preds = vec![0usize; 100];
        let f1 = macro_f1(&preds, &truth, 2);
        assert!((f1 - (2.0 * 90.0 / 190.0) / 2.0).abs() < 1e-12, "{f1}");
        // Absent classes are skipped, and F1 is stricter than macro
        // accuracy under false positives.
        assert_eq!(macro_f1(&[0, 0], &[0, 0], 3), 1.0);
        let preds = [0, 0, 0, 1];
        let truth = [0, 0, 1, 1];
        assert!(macro_f1(&preds, &truth, 2) < macro_accuracy(&preds, &truth, 2) + 1e-12);
    }

    #[test]
    fn confusion_matrix_counts() {
        let truth = [0, 0, 1, 2];
        let preds = [0, 1, 1, 1];
        let m = confusion_matrix(&preds, &truth, 3);
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(0, 1), 1.0);
        assert_eq!(m.at(1, 1), 1.0);
        assert_eq!(m.at(2, 1), 1.0);
        assert_eq!(m.at(2, 2), 0.0);
        // Row sums equal per-class truth counts.
        let row0: f32 = m.row(0).iter().sum();
        assert_eq!(row0, 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }
}
