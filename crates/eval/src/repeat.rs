//! Repeated-run statistics (`mean ± σ` over seeded runs).
//!
//! "Each experiment was conducted over 10 runs" (paper Section IV). Every
//! Table I/III cell and every Figure 6 point is a [`RunStats`] produced by
//! [`repeat_runs`], which hands each run a distinct deterministic seed.

use linalg::stats;
use serde::{Deserialize, Serialize};

/// Mean, sample standard deviation, and the raw per-run values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-run metric values, in run order.
    pub runs: Vec<f64>,
}

impl RunStats {
    /// Wraps raw per-run values.
    pub fn from_runs(runs: Vec<f64>) -> Self {
        Self { runs }
    }

    /// Arithmetic mean over runs.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.runs)
    }

    /// Sample standard deviation over runs (the paper's `± σ`).
    pub fn std(&self) -> f64 {
        stats::sample_std_dev(&self.runs)
    }

    /// Median Absolute Deviation over runs (the Figure 8 robustness
    /// statistic).
    pub fn mad(&self) -> f64 {
        stats::median_abs_deviation(&self.runs)
    }

    /// Smallest and largest run values (`(0, 0)` if empty).
    pub fn min_max(&self) -> (f64, f64) {
        stats::min_max(&self.runs).unwrap_or((0.0, 0.0))
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs were recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// `"mean ± std"` formatted like the paper's tables (two decimals,
    /// values in percent if the metric is).
    pub fn format(&self, decimals: usize) -> String {
        format!(
            "{:.prec$} ± {:.prec$}",
            self.mean(),
            self.std(),
            prec = decimals
        )
    }
}

/// Runs `f` once per seed in `0..runs` (offset by `seed_base`), collecting
/// the returned metric.
///
/// The closure receives `(run_index, seed)`; everything stochastic inside a
/// run should derive from that seed so experiments replay exactly.
pub fn repeat_runs(runs: usize, seed_base: u64, mut f: impl FnMut(usize, u64) -> f64) -> RunStats {
    let values = (0..runs)
        .map(|i| f(i, seed_base.wrapping_add(i as u64)))
        .collect();
    RunStats::from_runs(values)
}

/// Parallel [`repeat_runs`]: the runs are split into contiguous chunks
/// executed on `threads` scoped worker threads.
///
/// Each run still receives the same `(run_index, seed_base + run_index)`
/// pair and writes its metric into the same slot, so for a closure that
/// derives everything from its seed (the [`repeat_runs`] contract) the
/// returned [`RunStats`] is **identical to the sequential version for every
/// thread count** — run order within the stats never changes. With
/// `threads <= 1` the work runs inline.
///
/// Up to `threads` runs execute concurrently, so peak memory scales with
/// whatever one run holds (dataset, model, buffers) times `threads`, and a
/// closure that spawns its own workers multiplies the two thread counts —
/// size `threads` so outer × inner stays near the core count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn repeat_runs_parallel(
    runs: usize,
    seed_base: u64,
    threads: usize,
    f: impl Fn(usize, u64) -> f64 + Sync,
) -> RunStats {
    if threads <= 1 || runs <= 1 {
        return repeat_runs(runs, seed_base, f);
    }
    let workers = threads.min(runs);
    let chunk = runs.div_ceil(workers);
    let mut values = vec![0.0f64; runs];
    std::thread::scope(|scope| {
        let mut rest = &mut values[..];
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let start = base;
            base += take;
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    let i = start + offset;
                    *slot = f(i, seed_base.wrapping_add(i as u64));
                }
            });
        }
    });
    RunStats::from_runs(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_runs() {
        let stats = repeat_runs(5, 100, |i, seed| {
            assert_eq!(seed, 100 + i as u64);
            i as f64
        });
        assert_eq!(stats.len(), 5);
        assert_eq!(stats.mean(), 2.0);
    }

    #[test]
    fn std_of_constant_runs_is_zero() {
        let stats = repeat_runs(10, 0, |_, _| 42.0);
        assert_eq!(stats.std(), 0.0);
        assert_eq!(stats.mad(), 0.0);
    }

    #[test]
    fn format_matches_paper_style() {
        let stats = RunStats::from_runs(vec![98.0, 98.5, 98.2, 98.8]);
        let s = stats.format(2);
        assert!(s.contains("98.3"));
        assert!(s.contains("±"));
    }

    #[test]
    fn min_max_works() {
        let stats = RunStats::from_runs(vec![3.0, 1.0, 2.0]);
        assert_eq!(stats.min_max(), (1.0, 3.0));
        assert_eq!(RunStats::from_runs(vec![]).min_max(), (0.0, 0.0));
    }

    #[test]
    fn parallel_runs_match_sequential_for_all_thread_counts() {
        // A seed-derived metric with distinguishable per-run values.
        let metric = |i: usize, seed: u64| (seed as f64) * 1.5 - i as f64;
        let sequential = repeat_runs(9, 1000, metric);
        for threads in 0..=12 {
            let parallel = repeat_runs_parallel(9, 1000, threads, metric);
            assert_eq!(sequential, parallel, "threads {threads}");
        }
        // Degenerate run counts behave too.
        assert_eq!(repeat_runs_parallel(0, 5, 4, metric).len(), 0);
        assert_eq!(
            repeat_runs_parallel(1, 5, 4, metric).runs,
            repeat_runs(1, 5, metric).runs
        );
    }

    #[test]
    fn seeds_are_distinct_across_runs() {
        let mut seeds = Vec::new();
        repeat_runs(4, 7, |_, seed| {
            seeds.push(seed);
            0.0
        });
        let mut dedup = seeds.clone();
        dedup.dedup();
        assert_eq!(seeds, dedup);
    }
}
