//! Evaluation harness for the BoostHD experiments.
//!
//! Everything the benchmark binaries need to turn trained
//! `boosthd::Classifier`s into the numbers the paper reports:
//!
//! * [`metrics`] — accuracy, *macro* accuracy (the imbalance-fair metric of
//!   Figure 7), confusion matrices, per-class recall;
//! * [`repeat`] — `mean ± σ` over repeated seeded runs (the paper reports
//!   10 runs per cell);
//! * [`timing`] — wall-clock train/inference timing in the paper's
//!   `10⁻⁵ s` units;
//! * [`table`] — ASCII/CSV rendering for tables, series (figure data), and
//!   heatmaps (Figure 3).
//!
//! # Example
//!
//! ```
//! use eval_harness::metrics::{accuracy, macro_accuracy};
//!
//! let truth = [0, 0, 1, 1, 2, 2];
//! let preds = [0, 0, 1, 0, 2, 2];
//! assert!((accuracy(&preds, &truth) - 5.0 / 6.0).abs() < 1e-12);
//! assert!((macro_accuracy(&preds, &truth, 3) - (1.0 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod metrics;
pub mod repeat;
pub mod table;
pub mod timing;

pub use metrics::{accuracy, confusion_matrix, macro_accuracy, per_class_recall};
pub use repeat::{repeat_runs, repeat_runs_parallel, RunStats};
pub use table::{Heatmap, Series, Table};
pub use timing::{percentile, time_per_query_secs, LatencySummary, Timed};
