//! ASCII/CSV rendering for tables, figure series, and heatmaps.
//!
//! The benchmark binaries print their results through these types so every
//! table and figure of the paper has one canonical textual form, easy to
//! diff across runs and paste into EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// A labeled 2-D table of string cells (Tables I–III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Header of the label column (e.g. `"Dataset"`).
    pub corner: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row labels.
    pub rows: Vec<String>,
    /// `rows × columns` cells.
    pub cells: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given headers.
    pub fn new(title: impl Into<String>, corner: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            corner: corner.into(),
            columns,
            rows: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len()` differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(label.into());
        self.cells.push(cells);
    }

    /// Renders a fixed-width ASCII table.
    pub fn render(&self) -> String {
        let mut widths = vec![self.corner.len()];
        for r in &self.rows {
            widths[0] = widths[0].max(r.len());
        }
        for (c, col) in self.columns.iter().enumerate() {
            let mut w = col.len();
            for row in &self.cells {
                w = w.max(row[c].len());
            }
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header = format!("| {:<w$} |", self.corner, w = widths[0]);
        for (c, col) in self.columns.iter().enumerate() {
            header.push_str(&format!(" {:<w$} |", col, w = widths[c + 1]));
        }
        out.push_str(&header);
        out.push('\n');
        let mut rule = format!("|{}|", "-".repeat(widths[0] + 2));
        for w in &widths[1..] {
            rule.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&rule);
        out.push('\n');
        for (label, row) in self.rows.iter().zip(&self.cells) {
            let mut line = format!("| {:<w$} |", label, w = widths[0]);
            for (c, cell) in row.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = widths[c + 1]));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.corner);
        for col in &self.columns {
            out.push(',');
            out.push_str(col);
        }
        out.push('\n');
        for (label, row) in self.rows.iter().zip(&self.cells) {
            out.push_str(label);
            for cell in row {
                out.push(',');
                out.push_str(cell);
            }
            out.push('\n');
        }
        out
    }
}

/// One named data series of a figure (x, y pairs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Sample points as `(x, y)`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders several series that share an x-axis as aligned columns.
    ///
    /// # Panics
    ///
    /// Panics if the series disagree on their x values.
    pub fn render_aligned(title: &str, x_label: &str, series: &[Series]) -> String {
        let mut out = format!("# {title}\n{x_label:>12}");
        for s in series {
            out.push_str(&format!(" {:>16}", s.name));
        }
        out.push('\n');
        if let Some(first) = series.first() {
            for (i, &(x, _)) in first.points.iter().enumerate() {
                out.push_str(&format!("{x:>12.6}"));
                for s in series {
                    assert!(
                        (s.points[i].0 - x).abs() < 1e-12,
                        "series {} disagrees on x at index {i}",
                        s.name
                    );
                    out.push_str(&format!(" {:>16.6}", s.points[i].1));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// A 2-D sweep result (Figure 3's accuracy heatmaps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Caption.
    pub title: String,
    /// Label of the x axis (columns).
    pub x_label: String,
    /// Label of the y axis (rows).
    pub y_label: String,
    /// Column coordinate values.
    pub xs: Vec<f64>,
    /// Row coordinate values.
    pub ys: Vec<f64>,
    /// `ys.len() × xs.len()` cell values.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Creates a heatmap filled with `f(x, y)` placeholders of 0.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        xs: Vec<f64>,
        ys: Vec<f64>,
    ) -> Self {
        let values = vec![vec![0.0; xs.len()]; ys.len()];
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            xs,
            ys,
            values,
        }
    }

    /// Sets the cell at row `yi`, column `xi`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, yi: usize, xi: usize, value: f64) {
        self.values[yi][xi] = value;
    }

    /// Renders the grid with row/column coordinates.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# {} ({} columns × {} rows; x={}, y={})\n",
            self.title,
            self.xs.len(),
            self.ys.len(),
            self.x_label,
            self.y_label
        );
        out.push_str(&format!(
            "{:>10}",
            format!("{}\\{}", self.y_label, self.x_label)
        ));
        for x in &self.xs {
            out.push_str(&format!(" {x:>8.0}"));
        }
        out.push('\n');
        for (yi, y) in self.ys.iter().enumerate() {
            out.push_str(&format!("{y:>10.0}"));
            for v in &self.values[yi] {
                out.push_str(&format!(" {v:>8.2}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let mut t = Table::new("Accuracy", "Dataset", vec!["A".into(), "B".into()]);
        t.push_row("wesad", vec!["98.4".into(), "96.4".into()]);
        t.push_row("nurse", vec!["61.5".into(), "61.4".into()]);
        let rendered = t.render();
        assert!(rendered.contains("98.4"));
        assert!(rendered.contains("nurse"));
        assert!(rendered.lines().count() >= 4);
    }

    #[test]
    fn table_csv_has_header_and_rows() {
        let mut t = Table::new("T", "Model", vec!["x".into()]);
        t.push_row("m1", vec!["1.0".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "Model,x\nm1,1.0\n");
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T", "r", vec!["a".into(), "b".into()]);
        t.push_row("bad", vec!["1".into()]);
    }

    #[test]
    fn series_render_aligned() {
        let mut a = Series::new("BoostHD");
        let mut b = Series::new("OnlineHD");
        for i in 0..3 {
            a.push(i as f64, 90.0 + i as f64);
            b.push(i as f64, 85.0 + i as f64);
        }
        let out = Series::render_aligned("Fig6", "D", &[a, b]);
        assert!(out.contains("BoostHD"));
        assert!(out.contains("OnlineHD"));
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "disagrees on x")]
    fn series_alignment_checked() {
        let mut a = Series::new("a");
        a.push(0.0, 1.0);
        let mut b = Series::new("b");
        b.push(5.0, 1.0);
        Series::render_aligned("t", "x", &[a, b]);
    }

    #[test]
    fn heatmap_set_and_render() {
        let mut h = Heatmap::new("Fig3a", "NL", "D", vec![1.0, 10.0], vec![1000.0, 10000.0]);
        h.set(0, 0, 94.5);
        h.set(1, 1, 98.2);
        let out = h.render();
        assert!(out.contains("94.50"));
        assert!(out.contains("98.20"));
        assert!(out.contains("Fig3a"));
    }
}
