//! Wall-clock timing in the paper's reporting units.
//!
//! Table II reports *inference time per query* in units of `10⁻⁵` seconds.
//! [`time_per_query_secs`] measures a batched prediction closure and
//! divides by the query count; [`Timed`] wraps any computation with its
//! elapsed time.

use std::time::Instant;

/// A value together with how long it took to produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

impl<T> Timed<T> {
    /// Runs `f`, recording its wall-clock duration.
    pub fn run(f: impl FnOnce() -> T) -> Self {
        let start = Instant::now();
        let value = f();
        Self {
            value,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Elapsed time in the paper's `10⁻⁵ s` units.
    pub fn tenth_millis(&self) -> f64 {
        self.seconds * 1e5
    }
}

/// Measures the average per-query latency of `predict` over `queries`
/// queries, repeating the whole batch `repeats` times and averaging (first
/// a warm-up batch runs untimed to populate caches).
///
/// # Panics
///
/// Panics if `queries` or `repeats` is zero.
pub fn time_per_query_secs(queries: usize, repeats: usize, mut predict: impl FnMut()) -> f64 {
    assert!(queries > 0, "need at least one query");
    assert!(repeats > 0, "need at least one repeat");
    predict(); // warm-up
    let start = Instant::now();
    for _ in 0..repeats {
        predict();
    }
    start.elapsed().as_secs_f64() / (repeats as f64 * queries as f64)
}

/// Converts seconds to the paper's `10⁻⁵ s` reporting unit.
pub fn to_tenth_millis(seconds: f64) -> f64 {
    seconds * 1e5
}

/// The `q`-th percentile (0.0 ≤ `q` ≤ 100.0) of `samples` by the
/// nearest-rank method on a sorted copy. Returns `NaN` for an empty slice.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    percentile_sorted(&sorted, q)
}

/// [`percentile`] over an already-sorted slice (no copy, no re-sort).
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Tail-aware latency summary: the percentiles a serving pipeline reports
/// alongside the mean (mean-only reporting hides exactly the tail spikes
/// continuous monitoring cares about).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean, in seconds.
    pub mean: f64,
    /// Median (p50), in seconds.
    pub p50: f64,
    /// 95th percentile, in seconds.
    pub p95: f64,
    /// 99th percentile, in seconds.
    pub p99: f64,
    /// Worst observed sample, in seconds.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes raw latency samples (seconds). Returns an all-zero
    /// summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
        Self {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Renders the summary in the paper's `10⁻⁵ s` units, e.g. for table
    /// rows and engine reports.
    pub fn format_tenth_millis(&self) -> String {
        format!(
            "mean {:.2} | p50 {:.2} | p95 {:.2} | p99 {:.2} | max {:.2} (1e-5 s, n={})",
            to_tenth_millis(self.mean),
            to_tenth_millis(self.p50),
            to_tenth_millis(self.p95),
            to_tenth_millis(self.p99),
            to_tenth_millis(self.max),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_records_positive_duration() {
        let timed = Timed::run(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(timed.seconds >= 0.0);
        assert!(timed.value > 0);
        assert!((timed.tenth_millis() - timed.seconds * 1e5).abs() < 1e-9);
    }

    #[test]
    fn per_query_latency_scales_down_with_queries() {
        let work = || {
            std::hint::black_box((0..200_000u64).fold(0u64, |a, b| a.wrapping_add(b)));
        };
        let few = time_per_query_secs(1, 3, work);
        let many = time_per_query_secs(100, 3, work);
        assert!(many < few, "same batch over more queries → lower per-query");
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(to_tenth_millis(1.0), 1e5);
        assert!((to_tenth_millis(7.57e-5) - 7.57).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_panics() {
        time_per_query_secs(0, 1, || {});
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 95.0), 95.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert!(percentile(&[], 50.0).is_nan());
        // Order-independence: percentiles sort internally.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }

    #[test]
    fn latency_summary_orders_tail() {
        let mut samples: Vec<f64> = vec![1e-4; 99];
        samples.push(1e-2); // one tail spike
        let summary = LatencySummary::from_samples(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50, 1e-4);
        assert_eq!(summary.p99, 1e-4);
        assert_eq!(summary.max, 1e-2);
        assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        assert!(summary.mean > summary.p50, "spike must pull the mean up");
        assert!(summary.format_tenth_millis().contains("p99"));
    }

    #[test]
    fn latency_summary_empty_is_zeroed() {
        let summary = LatencySummary::from_samples(&[]);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.max, 0.0);
    }
}
