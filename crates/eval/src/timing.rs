//! Wall-clock timing in the paper's reporting units.
//!
//! Table II reports *inference time per query* in units of `10⁻⁵` seconds.
//! [`time_per_query_secs`] measures a batched prediction closure and
//! divides by the query count; [`Timed`] wraps any computation with its
//! elapsed time.

use std::time::Instant;

/// A value together with how long it took to produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

impl<T> Timed<T> {
    /// Runs `f`, recording its wall-clock duration.
    pub fn run(f: impl FnOnce() -> T) -> Self {
        let start = Instant::now();
        let value = f();
        Self {
            value,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Elapsed time in the paper's `10⁻⁵ s` units.
    pub fn tenth_millis(&self) -> f64 {
        self.seconds * 1e5
    }
}

/// Measures the average per-query latency of `predict` over `queries`
/// queries, repeating the whole batch `repeats` times and averaging (first
/// a warm-up batch runs untimed to populate caches).
///
/// # Panics
///
/// Panics if `queries` or `repeats` is zero.
pub fn time_per_query_secs(queries: usize, repeats: usize, mut predict: impl FnMut()) -> f64 {
    assert!(queries > 0, "need at least one query");
    assert!(repeats > 0, "need at least one repeat");
    predict(); // warm-up
    let start = Instant::now();
    for _ in 0..repeats {
        predict();
    }
    start.elapsed().as_secs_f64() / (repeats as f64 * queries as f64)
}

/// Converts seconds to the paper's `10⁻⁵ s` reporting unit.
pub fn to_tenth_millis(seconds: f64) -> f64 {
    seconds * 1e5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_records_positive_duration() {
        let timed = Timed::run(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(timed.seconds >= 0.0);
        assert!(timed.value > 0);
        assert!((timed.tenth_millis() - timed.seconds * 1e5).abs() < 1e-9);
    }

    #[test]
    fn per_query_latency_scales_down_with_queries() {
        let work = || {
            std::hint::black_box((0..200_000u64).fold(0u64, |a, b| a.wrapping_add(b)));
        };
        let few = time_per_query_secs(1, 3, work);
        let many = time_per_query_secs(100, 3, work);
        assert!(many < few, "same batch over more queries → lower per-query");
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(to_tenth_millis(1.0), 1e5);
        assert!((to_tenth_millis(7.57e-5) - 7.57).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_panics() {
        time_per_query_secs(0, 1, || {});
    }
}
