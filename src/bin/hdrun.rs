//! `hdrun` — train, evaluate, and serve any model of the reproduction from
//! one declarative TOML spec file.
//!
//! The spec file has up to three tables:
//!
//! * `[model]` — a [`boosthd::ModelSpec`] (see `specs/wesad_boosthd.toml`
//!   for the full key set);
//! * `[dataset]` — which synthetic wearable profile to generate and how to
//!   split it (`profile`, `subjects`, `windows_per_state`,
//!   `window_samples`, `segments`, `seed`, `test_fraction`);
//! * `[serve]` — micro-batching and reliability gating for the serving
//!   engine (`max_batch`, `max_wait_ms`, `threads`, `abstain_threshold`,
//!   `windows`, `hop_samples`), plus network-mode knobs (`exec` =
//!   `"pooled"`/`"scoped"`, `queue_depth`, `backpressure` =
//!   `"shed"`/`"block"`, `max_frame_bytes`) and resilience knobs
//!   (`deadline_ms`, `read_timeout_ms`, `retry_after_ms`,
//!   `drain_deadline_ms`, `degrade` + `degrade_high_depth` /
//!   `degrade_low_depth` / `degrade_after` / `recover_after`,
//!   `watchdog_interval_ms`, `model_check_interval_ms`, `canary_rows` —
//!   see the annotated `specs/wesad_boosthd.toml`).
//!
//! Campaign spec files (`hdrun campaign`) additionally hold one or more
//! model tables (`[model]`, `[model-1]`, ...), one or more `[scenario]` /
//! `[scenario-N]` tables (see [`reliability::campaign`]), an optional
//! `[campaign]` header (`name`, `seed`, `trials`, `abstain_threshold`),
//! and an optional `[stream]` table that measures live micro-batched
//! degradation (`windows`, `hop_samples`, `max_batch`, `model`, `seed`,
//! plus a sensor `fault` + `severity`).
//!
//! Subcommands:
//!
//! ```text
//! hdrun train    --spec <file> [--out <model.bhde>]   # fit + evaluate (+ save envelope)
//! hdrun eval     --spec <file> --model <model.bhde>   # load + evaluate + confidence report
//! hdrun serve    --spec <file> --model <model.bhde>   # load + stream windows through the engine
//! hdrun serve    --spec <file> --model <model.bhde> --listen 127.0.0.1:7878
//!                                                     # network mode: JSON-lines over TCP
//! hdrun campaign <spec.toml> [--out <report.json>] [--threads N]
//!                                                     # deterministic reliability sweep
//! hdrun chaos    [--out <report.json>] [--threads N] [--seed N] [--quick]
//!                                                     # serving chaos campaign -> BENCH_resilience.json
//! hdrun fleet add   --store <models.bhfs> --spec <f> --id <name> [--version N] [--ladder]
//! hdrun fleet list  --store <models.bhfs>             # index: model, version, tiers, bytes
//! hdrun fleet serve --store <models.bhfs> --spec <f> --listen <addr:port>
//!                   [--max-resident N] [--pin a,b]    # registry-routed TCP serving
//! ```
//!
//! `fleet add` fits the spec's model and appends it to an append-only
//! BHFS model store ([`boosthd::fleet::ModelStore`]); `--ladder` also
//! publishes the refit-free int8 and 1-bit degrade siblings under the
//! same version so the whole ladder hot-swaps as one unit. `fleet serve`
//! routes predict frames carrying `"model"` through the LRU registry
//! ([`boosthd::fleet::Fleet`]) — re-running `fleet add` for a served id
//! and letting the server refresh hot-swaps versions with zero failed
//! requests.
//!
//! `eval` and `serve` regenerate the dataset from the `[dataset]` seed, so
//! the normalization fitted on the training split is reproduced exactly and
//! a loaded envelope scores bit-identically to the model that was saved.
//! `campaign` reports are byte-identical for any `--threads` value (the
//! engine pre-forks every cell's RNG from the spec).

use std::error::Error;
use std::process::ExitCode;
use std::time::Duration;

use boosthd::parallel::ExecBackend;
use boosthd::toml::TomlDoc;
use boosthd::{BoostHdError, ModelSpec, Pipeline};
use boosthd_repro::serve::fleet::{Fleet, FleetConfig, ModelStore};
use boosthd_repro::serve::server::{
    fleet_ladder, Backpressure, Server, ServerConfig, ServerTuning,
};
use boosthd_repro::serve::{EngineConfig, InferenceEngine};
use eval_harness::metrics::accuracy;
use linalg::Matrix;
use reliability::campaign::{Campaign, CampaignData, CampaignSpec};
use wearables::dataset::normalize_pair;
use wearables::preprocess::Normalizer;
use wearables::streaming::WindowStream;
use wearables::{Dataset, DatasetProfile};

fn usage() -> &'static str {
    "usage:\n  hdrun train --spec <file> [--out <model.bhde>]\n  hdrun eval  --spec <file> --model <model.bhde>\n  hdrun serve --spec <file> --model <model.bhde> [--listen <addr:port>]\n  hdrun campaign <spec.toml> [--out <report.json>] [--threads N]\n  hdrun chaos [--out <report.json>] [--threads N] [--seed N] [--quick]\n  hdrun fleet add   --store <models.bhfs> --spec <file> --id <name> [--version N] [--ladder]\n  hdrun fleet list  --store <models.bhfs>\n  hdrun fleet serve --store <models.bhfs> --spec <file> --listen <addr:port> [--max-resident N] [--pin a,b]"
}

struct Args {
    command: String,
    spec: Option<String>,
    model: Option<String>,
    out: Option<String>,
    threads: Option<usize>,
    listen: Option<String>,
    seed: Option<u64>,
    quick: bool,
    store: Option<String>,
    id: Option<String>,
    version: Option<u64>,
    ladder: bool,
    max_resident: Option<usize>,
    pin: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut command = argv.get(1).cloned().ok_or_else(|| usage().to_string())?;
    let mut i = 2;
    if command == "fleet" {
        // `hdrun fleet add|list|serve ...` — fold the subcommand in.
        let sub = argv
            .get(2)
            .cloned()
            .ok_or_else(|| format!("fleet needs a subcommand\n{}", usage()))?;
        command = format!("fleet {sub}");
        i = 3;
    }
    let mut args = Args {
        command,
        spec: None,
        model: None,
        out: None,
        threads: None,
        listen: None,
        seed: None,
        quick: false,
        store: None,
        id: None,
        version: None,
        ladder: false,
        max_resident: None,
        pin: Vec::new(),
    };
    while i < argv.len() {
        let take = |i: usize| -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} needs a value\n{}", argv[i], usage()))
        };
        match argv[i].as_str() {
            "--spec" => args.spec = Some(take(i)?),
            "--model" => args.model = Some(take(i)?),
            "--out" => args.out = Some(take(i)?),
            "--listen" => args.listen = Some(take(i)?),
            "--threads" => {
                let v = take(i)?;
                args.threads =
                    Some(v.parse::<usize>().ok().filter(|&t| t > 0).ok_or_else(|| {
                        format!("--threads needs a positive integer, got `{v}`\n{}", usage())
                    })?);
            }
            "--seed" => {
                let v = take(i)?;
                args.seed = Some(v.parse::<u64>().map_err(|_| {
                    format!("--seed needs an unsigned integer, got `{v}`\n{}", usage())
                })?);
            }
            "--quick" => {
                args.quick = true;
                i -= 1; // flag: no value to skip
            }
            "--store" => args.store = Some(take(i)?),
            "--id" => args.id = Some(take(i)?),
            "--version" => {
                let v = take(i)?;
                args.version = Some(v.parse::<u64>().map_err(|_| {
                    format!(
                        "--version needs an unsigned integer, got `{v}`\n{}",
                        usage()
                    )
                })?);
            }
            "--ladder" => {
                args.ladder = true;
                i -= 1; // flag: no value to skip
            }
            "--max-resident" => {
                let v = take(i)?;
                args.max_resident = Some(v.parse::<usize>().map_err(|_| {
                    format!(
                        "--max-resident needs an unsigned integer, got `{v}`\n{}",
                        usage()
                    )
                })?);
            }
            "--pin" => {
                args.pin = take(i)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            positional if !positional.starts_with('-') && args.spec.is_none() => {
                // `hdrun campaign specs/foo.toml` reads naturally.
                args.spec = Some(positional.to_string());
                i -= 1;
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
        i += 2;
    }
    Ok(args)
}

/// The `[dataset]` table resolved against the named base profile.
struct DatasetSpec {
    profile: DatasetProfile,
    seed: u64,
    test_fraction: f64,
}

fn dataset_spec(doc: &TomlDoc) -> Result<DatasetSpec, BoostHdError> {
    let invalid = |reason: String| BoostHdError::InvalidConfig { reason };
    let table = doc.table("dataset");
    let name = match table {
        Some(t) if t.get("profile").is_some() => t.get_str("profile")?.to_string(),
        _ => "wesad_like".to_string(),
    };
    let mut profile = match name.as_str() {
        "wesad_like" => wearables::profiles::wesad_like(),
        "nurse_like" => wearables::profiles::nurse_like(),
        "stress_predict_like" => wearables::profiles::stress_predict_like(),
        other => return Err(invalid(format!("unknown dataset profile `{other}`"))),
    };
    let mut seed = 42u64;
    let mut test_fraction = 0.3f64;
    if let Some(t) = table {
        for key in t.keys() {
            if !matches!(
                key,
                "profile"
                    | "subjects"
                    | "windows_per_state"
                    | "window_samples"
                    | "segments"
                    | "seed"
                    | "test_fraction"
            ) {
                return Err(invalid(format!("unknown key `{key}` in [dataset]")));
            }
        }
        if t.get("subjects").is_some() {
            profile.subjects = t.get_usize("subjects")?;
        }
        if t.get("windows_per_state").is_some() {
            profile.windows_per_state = t.get_usize("windows_per_state")?;
        }
        if t.get("window_samples").is_some() {
            profile.window_samples = t.get_usize("window_samples")?;
        }
        if t.get("segments").is_some() {
            profile.segments = t.get_usize("segments")?;
        }
        if t.get("seed").is_some() {
            seed = t.get_u64("seed")?;
        }
        if t.get("test_fraction").is_some() {
            test_fraction = t.get_float("test_fraction")?;
            if !(0.0..1.0).contains(&test_fraction) {
                return Err(invalid(format!(
                    "test_fraction must be in [0, 1), got {test_fraction}"
                )));
            }
        }
    }
    Ok(DatasetSpec {
        profile,
        seed,
        test_fraction,
    })
}

/// The `[serve]` table.
struct ServeSpec {
    max_batch: usize,
    max_wait: Duration,
    threads: Option<usize>,
    abstain_threshold: f32,
    windows: usize,
    hop_samples: usize,
    exec: ExecBackend,
    tuning: ServerTuning,
}

fn serve_spec(doc: &TomlDoc, default_hop: usize) -> Result<ServeSpec, BoostHdError> {
    let invalid = |reason: String| BoostHdError::InvalidConfig { reason };
    let mut spec = ServeSpec {
        max_batch: EngineConfig::default().max_batch,
        max_wait: EngineConfig::default().max_wait,
        threads: None,
        abstain_threshold: 0.0,
        windows: 200,
        hop_samples: default_hop,
        exec: ExecBackend::default(),
        tuning: ServerTuning::default(),
    };
    let Some(t) = doc.table("serve") else {
        return Ok(spec);
    };
    for key in t.keys() {
        if !matches!(
            key,
            "max_batch"
                | "max_wait_ms"
                | "threads"
                | "abstain_threshold"
                | "windows"
                | "hop_samples"
                | "exec"
                | "queue_depth"
                | "backpressure"
                | "max_frame_bytes"
                | "deadline_ms"
                | "read_timeout_ms"
                | "retry_after_ms"
                | "drain_deadline_ms"
                | "degrade"
                | "degrade_high_depth"
                | "degrade_low_depth"
                | "degrade_after"
                | "recover_after"
                | "watchdog_interval_ms"
                | "model_check_interval_ms"
                | "canary_rows"
        ) {
            return Err(invalid(format!("unknown key `{key}` in [serve]")));
        }
    }
    if t.get("max_batch").is_some() {
        spec.max_batch = t.get_usize("max_batch")?;
    }
    if t.get("max_wait_ms").is_some() {
        spec.max_wait = Duration::from_millis(t.get_u64("max_wait_ms")?);
    }
    if t.get("threads").is_some() {
        spec.threads = Some(t.get_usize("threads")?);
    }
    if t.get("abstain_threshold").is_some() {
        spec.abstain_threshold = t.get_float("abstain_threshold")? as f32;
    }
    if t.get("windows").is_some() {
        spec.windows = t.get_usize("windows")?;
    }
    if t.get("hop_samples").is_some() {
        spec.hop_samples = t.get_usize("hop_samples")?;
    }
    if t.get("exec").is_some() {
        let tag = t.get_str("exec")?;
        spec.exec = ExecBackend::from_tag(tag)
            .ok_or_else(|| invalid(format!("[serve] exec must be pooled|scoped, got `{tag}`")))?;
    }
    if t.get("queue_depth").is_some() {
        spec.tuning.queue_depth = t.get_usize("queue_depth")?.max(1);
    }
    if t.get("backpressure").is_some() {
        let tag = t.get_str("backpressure")?;
        spec.tuning.backpressure = Backpressure::from_tag(tag).ok_or_else(|| {
            invalid(format!(
                "[serve] backpressure must be shed|block, got `{tag}`"
            ))
        })?;
    }
    if t.get("max_frame_bytes").is_some() {
        spec.tuning.max_frame_bytes = t.get_usize("max_frame_bytes")?.max(64);
    }
    if t.get("deadline_ms").is_some() {
        // 0 means "no default deadline" so specs can disable it explicitly.
        spec.tuning.deadline_ms = match t.get_u64("deadline_ms")? {
            0 => None,
            ms => Some(ms),
        };
    }
    if t.get("read_timeout_ms").is_some() {
        spec.tuning.read_timeout_ms = t.get_u64("read_timeout_ms")?;
    }
    if t.get("retry_after_ms").is_some() {
        spec.tuning.retry_after_ms = t.get_u64("retry_after_ms")?;
    }
    if t.get("drain_deadline_ms").is_some() {
        spec.tuning.drain_deadline_ms = t.get_u64("drain_deadline_ms")?;
    }
    if t.get("degrade").is_some() {
        spec.tuning.degrade.enabled = t.get_bool("degrade")?;
    }
    if t.get("degrade_high_depth").is_some() {
        spec.tuning.degrade.high_depth = t.get_usize("degrade_high_depth")?.max(1);
    }
    if t.get("degrade_low_depth").is_some() {
        spec.tuning.degrade.low_depth = t.get_usize("degrade_low_depth")?;
    }
    if t.get("degrade_after").is_some() {
        spec.tuning.degrade.degrade_after = t.get_usize("degrade_after")?.max(1) as u32;
    }
    if t.get("recover_after").is_some() {
        spec.tuning.degrade.recover_after = t.get_usize("recover_after")?.max(1) as u32;
    }
    if t.get("watchdog_interval_ms").is_some() {
        spec.tuning.watchdog_interval_ms = t.get_u64("watchdog_interval_ms")?;
    }
    if t.get("model_check_interval_ms").is_some() {
        spec.tuning.model_check_interval_ms = t.get_u64("model_check_interval_ms")?;
    }
    if t.get("canary_rows").is_some() {
        spec.tuning.canary_rows = t.get_usize("canary_rows")?;
    }
    Ok(spec)
}

fn load_doc(path: &str) -> Result<TomlDoc, Box<dyn Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec file {path}: {e}"))?;
    Ok(TomlDoc::parse(&text)?)
}

/// Regenerates the `[dataset]` cohort and its normalized subject-wise
/// split (deterministic in the spec, so `eval`/`serve` see exactly the
/// training-time feature space).
fn prepare(ds: &DatasetSpec) -> Result<(Dataset, Dataset), Box<dyn Error>> {
    let data = wearables::generate(&ds.profile, ds.seed)?;
    let (train, test) = data.split_by_subject_fraction(ds.test_fraction, ds.seed ^ 0x5117)?;
    Ok(normalize_pair(&train, &test)?)
}

fn confidence_report(pipeline: &Pipeline, x: &Matrix, y: &[usize]) -> String {
    let predictions = pipeline.predict_batch_with_confidence(x);
    let n = predictions.len().max(1);
    let mean_conf: f32 = predictions.iter().map(|p| p.confidence).sum::<f32>() / n as f32;
    let abstained = predictions.iter().filter(|p| p.abstained).count();
    let kept: Vec<(usize, usize)> = predictions
        .iter()
        .zip(y)
        .filter(|(p, _)| !p.abstained)
        .map(|(p, &t)| (p.class, t))
        .collect();
    let kept_acc = if kept.is_empty() {
        f64::NAN
    } else {
        kept.iter().filter(|(p, t)| p == t).count() as f64 / kept.len() as f64 * 100.0
    };
    format!(
        "mean confidence {mean_conf:.3} | abstained {abstained}/{} (threshold {:.2}) | accuracy on kept {kept_acc:.2}%",
        predictions.len(),
        pipeline.abstain_threshold()
    )
}

fn cmd_train(spec_path: &str, out: Option<&str>) -> Result<(), Box<dyn Error>> {
    let doc = load_doc(spec_path)?;
    let model_table = doc
        .table("model")
        .ok_or_else(|| format!("spec file {spec_path} has no [model] table"))?;
    let model_spec = ModelSpec::from_toml_table(model_table)?;
    let ds = dataset_spec(&doc)?;
    let sv = serve_spec(&doc, ds.profile.window_samples)?;
    let (train, test) = prepare(&ds)?;
    eprintln!(
        "[hdrun] {}: train {} x {} features, test {}, model {}",
        ds.profile.name,
        train.len(),
        train.num_features(),
        test.len(),
        model_spec.display_name()
    );
    let started = std::time::Instant::now();
    let pipeline = Pipeline::fit(&model_spec, train.features(), train.labels())?
        .with_abstain_threshold(sv.abstain_threshold);
    let fit_secs = started.elapsed().as_secs_f64();
    let train_acc = accuracy(&pipeline.predict_batch(train.features()), train.labels()) * 100.0;
    let test_acc = accuracy(&pipeline.predict_batch(test.features()), test.labels()) * 100.0;
    println!(
        "train: {} fitted in {fit_secs:.2}s | train acc {train_acc:.2}% | test acc {test_acc:.2}%",
        model_spec.display_name()
    );
    println!(
        "confidence: {}",
        confidence_report(&pipeline, test.features(), test.labels())
    );
    if let Some(out) = out {
        pipeline.save(out)?;
        println!(
            "saved envelope to {out} ({} bytes)",
            std::fs::metadata(out)?.len()
        );
    }
    Ok(())
}

fn cmd_eval(spec_path: &str, model_path: &str) -> Result<(), Box<dyn Error>> {
    let doc = load_doc(spec_path)?;
    let ds = dataset_spec(&doc)?;
    let (train, test) = prepare(&ds)?;
    let pipeline = Pipeline::load(model_path)?;
    eprintln!(
        "[hdrun] loaded {} from {model_path}",
        pipeline.spec().display_name()
    );
    let train_acc = accuracy(&pipeline.predict_batch(train.features()), train.labels()) * 100.0;
    let test_acc = accuracy(&pipeline.predict_batch(test.features()), test.labels()) * 100.0;
    println!(
        "eval: {} | train acc {train_acc:.2}% | test acc {test_acc:.2}%",
        pipeline.spec().display_name()
    );
    println!(
        "confidence: {}",
        confidence_report(&pipeline, test.features(), test.labels())
    );
    Ok(())
}

fn cmd_serve(
    spec_path: &str,
    model_path: &str,
    listen: Option<&str>,
) -> Result<(), Box<dyn Error>> {
    let doc = load_doc(spec_path)?;
    let ds = dataset_spec(&doc)?;
    let sv = serve_spec(&doc, ds.profile.window_samples)?;
    let pipeline = Pipeline::load(model_path)?;
    eprintln!(
        "[hdrun] serving {} from {model_path}",
        pipeline.spec().display_name()
    );
    // The serving-side normalizer is fitted on the training split the
    // model saw, reproduced from the [dataset] seed.
    let (train, _test) = prepare(&ds)?;
    let normalizer = Normalizer::fit(train.features())?;

    if let Some(addr) = listen {
        return serve_network(pipeline, normalizer, train.num_features(), addr, &sv);
    }

    let stream = WindowStream::new(&ds.profile, sv.hop_samples, ds.seed ^ 0x57EA)?;
    let engine = InferenceEngine::with_config(
        &pipeline,
        EngineConfig {
            max_batch: sv.max_batch,
            max_wait: sv.max_wait,
            threads: sv.threads,
            exec: sv.exec,
        },
    );
    // Normalize each window once; the engine and the confidence report
    // below must see the exact same rows.
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let (windows, outcome) = engine.serve_windows(stream.take(sv.windows), |w| {
        let row = Matrix::from_rows(std::slice::from_ref(&w.features)).expect("window row");
        let normalized = normalizer.apply(&row).row(0).to_vec();
        rows.push(normalized.clone());
        normalized
    });
    let correct = outcome
        .predictions
        .iter()
        .zip(&windows)
        .filter(|(p, w)| **p == w.state.label())
        .count();
    println!("serve: {}", outcome.stats.report());
    println!(
        "accuracy over {} streamed windows: {:.2}%",
        windows.len(),
        correct as f64 / windows.len().max(1) as f64 * 100.0
    );
    // Reliability gate on the same served windows, through the pipeline's
    // confidence path.
    let x = Matrix::from_rows(&rows)?;
    let labels: Vec<usize> = windows.iter().map(|w| w.state.label()).collect();
    println!("confidence: {}", confidence_report(&pipeline, &x, &labels));
    Ok(())
}

/// `hdrun serve --listen <addr>`: the JSON-lines TCP front-end. Blocks
/// until a client sends `{"cmd":"shutdown"}`, then drains every in-flight
/// request and reports the final counters.
fn serve_network(
    pipeline: Pipeline,
    normalizer: Normalizer,
    num_features: usize,
    addr: &str,
    sv: &ServeSpec,
) -> Result<(), Box<dyn Error>> {
    let config = ServerConfig {
        engine: EngineConfig {
            max_batch: sv.max_batch,
            max_wait: sv.max_wait,
            threads: sv.threads,
            exec: sv.exec,
        },
        tuning: sv.tuning,
    };
    let prep = Box::new(move |row: Vec<f32>| {
        let m = Matrix::from_rows(std::slice::from_ref(&row)).expect("validated feature width");
        normalizer.apply(&m).row(0).to_vec()
    });
    let server = Server::bind(
        std::sync::Arc::new(pipeline),
        num_features,
        addr,
        config,
        Some(prep),
    )?;
    println!(
        "listening on {} ({} features/request, exec {}, queue_depth {}, backpressure {})",
        server.local_addr(),
        num_features,
        config.engine.exec.tag(),
        config.tuning.queue_depth,
        config.tuning.backpressure.tag(),
    );
    let stats = server.wait();
    println!(
        "serve: drained | {} connections, {} answered, {} shed, {} protocol errors, {} batches",
        stats.connections, stats.answered, stats.shed, stats.protocol_errors, stats.batches
    );
    Ok(())
}

/// Opens a BHFS fleet store, creating an empty one if the path does not
/// exist yet (so `fleet add` bootstraps a store on first use).
fn open_or_create_store(path: &str) -> Result<ModelStore, Box<dyn Error>> {
    if std::path::Path::new(path).exists() {
        Ok(ModelStore::open(path)?)
    } else {
        Ok(ModelStore::create(path)?)
    }
}

/// `hdrun fleet add`: fit the spec's model and publish it into the store
/// under `--id`, auto-incrementing the version unless `--version` pins
/// one. With `--ladder`, the refit-free int8 and 1-bit siblings publish
/// with it as one atomic unit.
fn cmd_fleet_add(
    store_path: &str,
    spec_path: &str,
    id: &str,
    version: Option<u64>,
    ladder: bool,
) -> Result<(), Box<dyn Error>> {
    let doc = load_doc(spec_path)?;
    let model_table = doc
        .table("model")
        .ok_or_else(|| format!("spec file {spec_path} has no [model] table"))?;
    let model_spec = ModelSpec::from_toml_table(model_table)?;
    let ds = dataset_spec(&doc)?;
    let sv = serve_spec(&doc, ds.profile.window_samples)?;
    let (train, test) = prepare(&ds)?;
    let pipeline = Pipeline::fit(&model_spec, train.features(), train.labels())?
        .with_abstain_threshold(sv.abstain_threshold);
    let test_acc = accuracy(&pipeline.predict_batch(test.features()), test.labels()) * 100.0;

    let store = open_or_create_store(store_path)?;
    let version = match version {
        Some(v) => v,
        None => store.latest_version(id).map_or(1, |v| v + 1),
    };
    let tiers: Vec<Pipeline> = if ladder {
        fleet_ladder(&std::sync::Arc::new(pipeline))
    } else {
        vec![pipeline]
    };
    let tier_refs: Vec<&Pipeline> = tiers.iter().collect();
    store.append(id, version, &tier_refs)?;
    println!(
        "fleet add: published {id} v{version} to {store_path} ({} | {} tier{} | test acc {test_acc:.2}%)",
        model_spec.display_name(),
        tiers.len(),
        if tiers.len() == 1 { "" } else { "s" },
    );
    Ok(())
}

/// `hdrun fleet list`: print every `(model, version)` in the store with
/// its tier count and on-disk footprint.
fn cmd_fleet_list(store_path: &str) -> Result<(), Box<dyn Error>> {
    let store = ModelStore::open(store_path)?;
    let entries = store.entries();
    println!("fleet store {store_path}: {} record(s)", entries.len());
    // Group tiers under their (model, version) unit, in append order.
    let mut units: Vec<(String, u64, usize, u64)> = Vec::new();
    for e in &entries {
        match units
            .iter_mut()
            .find(|(id, v, _, _)| *id == e.model_id && *v == e.version)
        {
            Some((_, _, tiers, bytes)) => {
                *tiers += 1;
                *bytes += e.total_len;
            }
            None => units.push((e.model_id.clone(), e.version, 1, e.total_len)),
        }
    }
    for (id, version, tiers, bytes) in units {
        println!("  {id} v{version}: {tiers} tier(s), {bytes} bytes");
    }
    Ok(())
}

/// `hdrun fleet serve`: serve every model in the store over TCP. Predict
/// frames carrying `"model"` route through the registry (LRU residency,
/// `--max-resident`); frames without one serve the latest version of the
/// first published model.
fn cmd_fleet_serve(
    store_path: &str,
    spec_path: &str,
    listen: &str,
    max_resident: Option<usize>,
    pins: &[String],
) -> Result<(), Box<dyn Error>> {
    let doc = load_doc(spec_path)?;
    let ds = dataset_spec(&doc)?;
    let sv = serve_spec(&doc, ds.profile.window_samples)?;
    // The serving-side normalizer is fitted on the training split every
    // stored model saw, reproduced from the [dataset] seed. One feature
    // extractor per endpoint: all fleet models share this width.
    let (train, _test) = prepare(&ds)?;
    let normalizer = Normalizer::fit(train.features())?;
    let num_features = train.num_features();

    let store = ModelStore::open(store_path)?;
    let mut ids: Vec<String> = Vec::new();
    for e in store.entries() {
        if !ids.contains(&e.model_id) {
            ids.push(e.model_id.clone());
        }
    }
    if ids.is_empty() {
        return Err(format!("fleet store {store_path} holds no models").into());
    }
    let fleet = std::sync::Arc::new(Fleet::new(
        store,
        FleetConfig {
            max_resident: max_resident.unwrap_or(0),
        },
    ));
    for id in pins {
        fleet.pin(id, true)?;
    }
    let default_model = fleet.get(&ids[0])?;
    let pipeline = std::sync::Arc::clone(default_model.primary());

    let config = ServerConfig {
        engine: EngineConfig {
            max_batch: sv.max_batch,
            max_wait: sv.max_wait,
            threads: sv.threads,
            exec: sv.exec,
        },
        tuning: sv.tuning,
    };
    let prep = Box::new(move |row: Vec<f32>| {
        let m = Matrix::from_rows(std::slice::from_ref(&row)).expect("validated feature width");
        normalizer.apply(&m).row(0).to_vec()
    });
    let server = Server::bind_with_fleet(
        pipeline,
        num_features,
        listen,
        config,
        Some(prep),
        Some(std::sync::Arc::clone(&fleet)),
    )?;
    println!(
        "fleet: listening on {} ({} model(s), default `{}` v{}, max_resident {}, {} features/request)",
        server.local_addr(),
        ids.len(),
        default_model.model_id(),
        default_model.version(),
        if max_resident.unwrap_or(0) == 0 {
            "unbounded".to_string()
        } else {
            max_resident.unwrap_or(0).to_string()
        },
        num_features,
    );
    let stats = server.wait();
    println!(
        "fleet: drained | {} connections, {} answered, {} shed, {} unknown model, {} protocol errors",
        stats.connections, stats.answered, stats.shed, stats.unknown_model, stats.protocol_errors
    );
    Ok(())
}

/// The optional `[stream]` table: live micro-batched degradation
/// measurement appended to the campaign report.
fn run_stream(
    table: &boosthd::toml::TomlTable,
    ds: &DatasetSpec,
    base_models: &[Pipeline],
    train: &Dataset,
) -> Result<reliability::campaign::StreamingResult, Box<dyn Error>> {
    const STREAM_KEYS: [&str; 9] = [
        "windows",
        "hop_samples",
        "max_batch",
        "model",
        "seed",
        "fault",
        "severity",
        "amplitude",
        "target_class",
    ];
    if let Some(bad) = table.keys().find(|k| !STREAM_KEYS.contains(k)) {
        return Err(format!(
            "unknown key `{bad}` in [stream] (allowed: {})",
            STREAM_KEYS.join(", ")
        )
        .into());
    }
    let get_or = |key: &str, default: usize| -> Result<usize, BoostHdError> {
        match table.get(key) {
            Some(_) => table.get_usize(key),
            None => Ok(default),
        }
    };
    let windows = get_or("windows", 200)?;
    let hop = get_or("hop_samples", ds.profile.window_samples)?;
    let max_batch = get_or("max_batch", 32)?.max(1);
    let model_index = get_or("model", 1)?;
    let seed = match table.get("seed") {
        Some(_) => table.get_u64("seed")?,
        None => ds.seed ^ 0x57A1,
    };
    let fault = reliability::campaign::parse_fault(table)?;
    let severity = table.get_float("severity")?;
    if !severity.is_finite() || severity < 0.0 {
        return Err(
            format!("[stream] severity {severity} is not a finite non-negative number").into(),
        );
    }
    let pipeline = base_models
        .get(model_index.wrapping_sub(1))
        .ok_or_else(|| {
            format!(
                "[stream] model = {model_index} out of range (campaign has {} models, 1-based)",
                base_models.len()
            )
        })?;

    let normalizer = Normalizer::fit(train.features())?;
    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(windows);
    let mut labels: Vec<usize> = Vec::with_capacity(windows);
    for w in WindowStream::new(&ds.profile, hop, ds.seed ^ 0x57EA)?.take(windows) {
        let row = Matrix::from_rows(std::slice::from_ref(&w.features))?;
        rows.push(normalizer.apply(&row).row(0).to_vec());
        labels.push(w.state.label());
    }
    // Size-triggered flushes keep batch composition (and therefore the
    // per-batch fault streams) deterministic.
    let engine = InferenceEngine::with_config(
        pipeline,
        EngineConfig {
            max_batch,
            max_wait: Duration::from_secs(3600),
            threads: None,
            ..Default::default()
        },
    );
    Ok(reliability::campaign::measure_streaming_degradation(
        &engine, &rows, &labels, &fault, severity, seed,
    )?)
}

fn print_campaign_summary(report: &reliability::campaign::CampaignReport) {
    for (s, scenario) in report.scenarios.iter().enumerate() {
        eprintln!(
            "scenario {}: {} ({} = {:?}, seed {})",
            s + 1,
            scenario.fault.tag(),
            scenario.fault.severity_axis(),
            scenario.severities,
            scenario.seed
        );
        for m in 0..report.models.len() {
            let cells = report.model_cells(s, m);
            let points: Vec<String> = cells
                .iter()
                .map(|c| format!("{:.2}", c.mean_accuracy_pct))
                .collect();
            let abstain: f64 =
                cells.iter().map(|c| c.abstention_rate).sum::<f64>() / cells.len().max(1) as f64;
            eprintln!(
                "  {:<20} acc% [{}]  abstain {:.3}",
                report.models[m].1,
                points.join(", "),
                abstain
            );
        }
    }
    if let Some(s) = &report.streaming {
        eprintln!(
            "streaming: {} severity {} over {} windows in {} batches | clean {:.2}% -> faulted {:.2}%",
            s.fault.tag(),
            s.severity,
            s.windows,
            s.batches,
            s.clean_accuracy_pct,
            s.faulted_accuracy_pct
        );
    }
}

fn cmd_campaign(
    spec_path: &str,
    out: Option<&str>,
    threads_override: Option<usize>,
) -> Result<(), Box<dyn Error>> {
    let doc = load_doc(spec_path)?;
    let campaign_spec = CampaignSpec::from_doc(&doc)?;
    let ds = dataset_spec(&doc)?;
    let (train, test) = prepare(&ds)?;
    let threads = match threads_override {
        Some(t) => t,
        None => boosthd::parallel::try_default_threads()?,
    };
    eprintln!(
        "[hdrun] campaign `{}` on {}: {} models x {} scenarios, {} trials/cell, {} threads",
        campaign_spec.name,
        ds.profile.name,
        campaign_spec.models.len(),
        campaign_spec.scenarios.len(),
        campaign_spec.trials,
        threads
    );
    let data = CampaignData::new(
        train.features(),
        train.labels(),
        test.features(),
        test.labels(),
    )?;
    let campaign = Campaign::new(&campaign_spec, data)?;
    let mut report = campaign.run(threads)?;
    if let Some(stream_table) = doc.table("stream") {
        report.streaming = Some(run_stream(
            stream_table,
            &ds,
            campaign.base_models(),
            &train,
        )?);
    }
    print_campaign_summary(&report);
    let json = report.to_json();
    match out {
        Some(path) => {
            std::fs::write(path, &json)?;
            println!("wrote report to {path} ({} bytes)", json.len());
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// `hdrun chaos`: the serving-resilience campaign over a real loopback
/// server (no spec needed — the workload is the campaign's own synthetic
/// fixture, so the report is comparable across machines). Fails the run
/// when the no-fault control scenario's availability drops below 99% —
/// the in-binary CI gate.
fn cmd_chaos(
    out: Option<&str>,
    threads_override: Option<usize>,
    seed: u64,
    quick: bool,
) -> Result<(), Box<dyn Error>> {
    let threads = match threads_override {
        Some(t) => t,
        None => boosthd::parallel::try_default_threads()?,
    };
    eprintln!(
        "[hdrun] chaos campaign: seed {seed}, {threads} server threads{}",
        if quick { ", quick schedules" } else { "" }
    );
    let report = reliability::chaos::run_campaign(&reliability::chaos::ChaosConfig {
        seed,
        threads,
        quick,
    });
    for s in &report.scenarios {
        eprintln!(
            "  {:<18} {:>3}/{:<3} ok ({:.1}% available) | p99 {} | recovery {}ms | {} error replies",
            s.name,
            s.ok,
            s.requests,
            s.availability_pct,
            s.p99_under_fault_ms
                .map_or_else(|| "n/a".to_string(), |v| format!("{v}ms")),
            s.recovery_time_ms,
            s.errors.iter().sum::<u64>(),
        );
    }
    let control = report
        .scenario("control")
        .ok_or("chaos campaign must include the control scenario")?;
    if control.availability_pct < 99.0 {
        return Err(format!(
            "control-scenario availability {:.2}% is below the 99% floor",
            control.availability_pct
        )
        .into());
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            std::fs::write(path, &json)?;
            println!("wrote report to {path} ({} bytes)", json.len());
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn Error>> {
    baselines::spec::install();
    let args = parse_args().map_err(|e| -> Box<dyn Error> { e.into() })?;
    if args.command == "chaos" {
        // Chaos carries its own synthetic workload; no spec file involved.
        return cmd_chaos(
            args.out.as_deref(),
            args.threads,
            args.seed.unwrap_or(42),
            args.quick,
        );
    }
    if let Some(fleet_cmd) = args.command.strip_prefix("fleet ") {
        let store = args
            .store
            .as_deref()
            .ok_or_else(|| format!("fleet commands need --store\n{}", usage()))?;
        return match fleet_cmd {
            "list" => cmd_fleet_list(store),
            "add" => cmd_fleet_add(
                store,
                args.spec
                    .as_deref()
                    .ok_or_else(|| format!("fleet add needs --spec\n{}", usage()))?,
                args.id
                    .as_deref()
                    .ok_or_else(|| format!("fleet add needs --id\n{}", usage()))?,
                args.version,
                args.ladder,
            ),
            "serve" => cmd_fleet_serve(
                store,
                args.spec
                    .as_deref()
                    .ok_or_else(|| format!("fleet serve needs --spec\n{}", usage()))?,
                args.listen
                    .as_deref()
                    .ok_or_else(|| format!("fleet serve needs --listen\n{}", usage()))?,
                args.max_resident,
                &args.pin,
            ),
            other => Err(format!("unknown fleet subcommand `{other}`\n{}", usage()).into()),
        };
    }
    let spec = args
        .spec
        .as_deref()
        .ok_or_else(|| format!("--spec is required\n{}", usage()))?;
    match args.command.as_str() {
        "train" => cmd_train(spec, args.out.as_deref()),
        "eval" => cmd_eval(
            spec,
            args.model
                .as_deref()
                .ok_or_else(|| format!("eval needs --model\n{}", usage()))?,
        ),
        "serve" => cmd_serve(
            spec,
            args.model
                .as_deref()
                .ok_or_else(|| format!("serve needs --model\n{}", usage()))?,
            args.listen.as_deref(),
        ),
        "campaign" => cmd_campaign(spec, args.out.as_deref(), args.threads),
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hdrun: {e}");
            ExitCode::from(2)
        }
    }
}
