//! Umbrella crate for the BoostHD reproduction.
//!
//! Re-exports every subsystem so examples, integration tests, and
//! downstream users can depend on one crate:
//!
//! * [`boosthd`] — the paper's contribution: [`boosthd::BoostHd`] boosted
//!   ensembles over partitioned hyperspaces, plus [`boosthd::OnlineHd`] and
//!   [`boosthd::CentroidHd`];
//! * [`hdc`] — the hyperdimensional computing substrate (encoders, ops,
//!   partitioning, Marchenko–Pastur theory, span utilization);
//! * [`baselines`] — AdaBoost, Random Forest, gradient-boosted trees,
//!   linear SVM, and the dropout MLP, all from scratch;
//! * [`wearables`] — synthetic multimodal physiological datasets with the
//!   paper's preprocessing pipeline and subject-wise splits;
//! * [`reliability`] — the deterministic reliability-campaign engine
//!   ([`reliability::campaign`]) plus the underlying fault primitives
//!   (bit-flip injection, sensor/label noise, imbalance crafting);
//! * [`eval_harness`] — metrics, repeated-run statistics, timing, tables;
//! * [`serve`] — the batched streaming inference engine (micro-batching,
//!   thread fan-out, p50/p95/p99 latency accounting) over the wearables
//!   window stream;
//! * [`linalg`] — the dense linear algebra underneath it all.
//!
//! # Quickstart
//!
//! ```
//! use boosthd_repro::prelude::*;
//!
//! // A small WESAD-like dataset, split by subject, normalized.
//! let profile = DatasetProfile {
//!     subjects: 6,
//!     windows_per_state: 8,
//!     ..wearables::profiles::wesad_like()
//! };
//! let data = wearables::generate(&profile, 7)?;
//! let (train, test) = data.split_by_subject_fraction(0.3, 1)?;
//! let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;
//!
//! // Declare BoostHD as a spec, train through the unified facade, evaluate.
//! let spec = ModelSpec::BoostHd(BoostHdConfig {
//!     dim_total: 1000, n_learners: 10, ..Default::default()
//! });
//! let model = Pipeline::fit(&spec, train.features(), train.labels())?;
//! let preds = model.predict_batch(test.features());
//! let acc = eval_harness::metrics::accuracy(&preds, test.labels());
//! assert!(acc > 0.5);
//!
//! // Confidence-aware prediction for reliability-gated serving.
//! let p = model.predict_with_confidence(test.features().row(0));
//! assert!((0.0..=1.0).contains(&p.confidence));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

#![deny(missing_docs)]

pub use baselines;
pub use boosthd;
pub use boosthd_serve as serve;
pub use eval_harness;
pub use hdc;
pub use linalg;
pub use reliability;
pub use wearables;

/// The most common imports, bundled.
pub mod prelude {
    pub use baselines::{
        AdaBoost, AdaBoostConfig, GradientBoostedTrees, GradientBoostingConfig, LinearSvm,
        LinearSvmConfig, Mlp, MlpConfig, RandomForest, RandomForestConfig,
    };
    pub use boosthd::{
        BaselineKind, BaselineSpec, BoostHd, BoostHdConfig, CentroidHd, CentroidHdConfig,
        Classifier, Model, ModelSpec, OnlineHd, OnlineHdConfig, Pipeline, Prediction,
        QuantizedBoostHd, QuantizedHd, Voting,
    };
    pub use boosthd_serve::{EngineConfig, InferenceEngine};
    pub use eval_harness;
    pub use hdc::{DimensionPartition, Hypervector, SinusoidEncoder};
    pub use linalg::{Matrix, Rng64};
    pub use reliability::{flip_bits, Perturbable};
    pub use wearables::{self, Dataset, DatasetProfile, SubjectGroup};
}
