//! Quickstart: train BoostHD on a WESAD-like stress dataset and compare it
//! against OnlineHD, end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use boosthd_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a wearable stress dataset (15 subjects, 3 affect
    //    states, multimodal sensors) and split it by subject: the model
    //    never sees the test subjects during training.
    let profile = wearables::profiles::wesad_like();
    let data = wearables::generate(&profile, 42)?;
    println!(
        "dataset: {} windows x {} features, {} subjects, {} classes",
        data.len(),
        data.num_features(),
        data.subjects().len(),
        data.num_classes()
    );
    let (train, test) = data.split_by_subject_fraction(0.3, 7)?;
    let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;

    // 2. Train OnlineHD (one strong learner, D = 4000).
    let online = OnlineHd::fit(
        &OnlineHdConfig {
            dim: 4000,
            ..Default::default()
        },
        train.features(),
        train.labels(),
    )?;

    // 3. Train BoostHD (ten weak learners sharing the same D = 4000).
    let boost = BoostHd::fit(
        &BoostHdConfig {
            dim_total: 4000,
            n_learners: 10,
            ..Default::default()
        },
        train.features(),
        train.labels(),
    )?;
    println!(
        "BoostHD weak-learner weighted errors: {:?}",
        boost
            .training_errors()
            .iter()
            .map(|e| format!("{e:.3}"))
            .collect::<Vec<_>>()
    );

    // 4. Evaluate both on the held-out subjects.
    let acc = |preds: &[usize]| eval_harness::metrics::accuracy(preds, test.labels()) * 100.0;
    let online_acc = acc(&online.predict_batch(test.features()));
    let boost_acc = acc(&boost.predict_batch(test.features()));
    println!("OnlineHD accuracy: {online_acc:.2}%");
    println!("BoostHD  accuracy: {boost_acc:.2}%");

    // 5. BoostHD inference parallelizes across queries.
    let parallel_preds = boost.predict_batch_parallel(test.features(), 2);
    assert_eq!(parallel_preds, boost.predict_batch(test.features()));
    println!("parallel inference matches serial — ready for deployment.");

    // 6. Freeze for the device: quantization-aware refit, then bitpacked
    //    sign storage (32x smaller class memory, similarity = XOR+popcount).
    let packed = boost.quantize_with_refit(train.features(), train.labels(), 5)?;
    let packed_acc = acc(&packed.predict_batch(test.features()));
    println!(
        "bitpacked BoostHD accuracy: {packed_acc:.2}% with {} B of class memory",
        packed.class_storage_bytes()
    );
    Ok(())
}
