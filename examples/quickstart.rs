//! Quickstart: the unified `ModelSpec → Pipeline` API end to end — declare
//! a model, train it, ask it how confident it is, freeze it for the
//! device, and round-trip it through the persistence envelope.
//!
//! Run with: `cargo run --release --example quickstart`

use boosthd_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a wearable stress dataset (15 subjects, 3 affect
    //    states, multimodal sensors) and split it by subject: the model
    //    never sees the test subjects during training.
    let profile = wearables::profiles::wesad_like();
    let data = wearables::generate(&profile, 42)?;
    println!(
        "dataset: {} windows x {} features, {} subjects, {} classes",
        data.len(),
        data.num_features(),
        data.subjects().len(),
        data.num_classes()
    );
    let (train, test) = data.split_by_subject_fraction(0.3, 7)?;
    let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;

    // 2. Declare the two models. A spec is plain data — it serializes to
    //    the TOML the `hdrun` CLI consumes — so swapping models is a
    //    config change, not a code change.
    let online_spec = ModelSpec::OnlineHd(OnlineHdConfig {
        dim: 4000,
        ..Default::default()
    });
    let boost_spec = ModelSpec::BoostHd(BoostHdConfig {
        dim_total: 4000,
        n_learners: 10,
        ..Default::default()
    });
    println!("\nBoostHD spec as `hdrun` TOML:\n{}", boost_spec.to_toml());

    // 3. One fit call per spec, whatever the family.
    let online = Pipeline::fit(&online_spec, train.features(), train.labels())?;
    let boost = Pipeline::fit(&boost_spec, train.features(), train.labels())?;

    // 4. Evaluate both on the held-out subjects.
    let acc = |preds: &[usize]| eval_harness::metrics::accuracy(preds, test.labels()) * 100.0;
    println!(
        "OnlineHD accuracy: {:.2}%",
        acc(&online.predict_batch(test.features()))
    );
    println!(
        "BoostHD  accuracy: {:.2}%",
        acc(&boost.predict_batch(test.features()))
    );

    // 5. Reliability-gated prediction: normalized confidences plus an
    //    abstention threshold. Below-threshold windows return no decision
    //    — the abstain/escalate hook a clinical deployment needs.
    let gated = boost.with_abstain_threshold(0.5);
    let predictions = gated.predict_batch_with_confidence(test.features());
    let abstained = predictions.iter().filter(|p| p.abstained).count();
    let kept: Vec<(usize, usize)> = predictions
        .iter()
        .zip(test.labels())
        .filter(|(p, _)| !p.abstained)
        .map(|(p, &t)| (p.class, t))
        .collect();
    let kept_acc =
        kept.iter().filter(|(p, t)| p == t).count() as f64 / kept.len().max(1) as f64 * 100.0;
    println!(
        "confidence-gated BoostHD: abstains on {abstained}/{} windows, {kept_acc:.2}% on the rest",
        predictions.len()
    );

    // 6. Freeze for the device: the quantized variants are just another
    //    spec — trained in f32, refit against the binarized classes, and
    //    stored bitpacked (32x smaller class memory, XOR+popcount scoring).
    let packed_spec = ModelSpec::QuantizedBoostHd {
        base: BoostHdConfig {
            dim_total: 4000,
            n_learners: 10,
            ..Default::default()
        },
        refit_epochs: 5,
    };
    let packed = Pipeline::fit(&packed_spec, train.features(), train.labels())?;
    println!(
        "bitpacked BoostHD accuracy: {:.2}% with {} B of class memory",
        acc(&packed.predict_batch(test.features())),
        packed
            .downcast_ref::<QuantizedBoostHd>()
            .expect("spec-built packed ensemble")
            .class_storage_bytes()
    );

    // 7. One persistence envelope for every family: save, load, and get
    //    bit-identical predictions plus the original spec back.
    let path = std::env::temp_dir().join("boosthd_quickstart.bhde");
    packed.save(&path)?;
    let restored = Pipeline::load(&path)?;
    assert_eq!(
        packed.predict_batch(test.features()),
        restored.predict_batch(test.features())
    );
    assert_eq!(restored.spec(), &packed_spec);
    std::fs::remove_file(&path).ok();
    println!("save -> load round trip: bit-identical predictions, spec preserved.");
    Ok(())
}
