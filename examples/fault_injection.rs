//! Fault injection: how much accuracy survives when bits flip in the
//! model's memory (the paper's Section IV-D scenario).
//!
//! Wearables keep trained parameters in small, often unprotected memories;
//! radiation and voltage droop flip bits. This example declares one
//! bit-flip scenario over BoostHD, OnlineHD, and the DNN baseline and
//! hands it to [`reliability::campaign`] — the same deterministic engine
//! behind `fig8` and `hdrun campaign` — then reports the surviving
//! accuracy per flip probability.
//!
//! Run with: `cargo run --release --example fault_injection`

use boosthd_repro::prelude::*;
use reliability::campaign::{self, CampaignData, CampaignSpec, FaultModel, ScenarioSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = wearables::profiles::wesad_like();
    profile.subjects = 10;
    profile.windows_per_state = 15;
    let data = wearables::generate(&profile, 9)?;
    let (train, test) = data.split_by_subject_fraction(0.3, 3)?;
    let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;

    let trials = 10;
    let spec = CampaignSpec {
        name: "fault_injection".into(),
        seed: 0xBAD,
        trials,
        abstain_threshold: 0.0,
        models: vec![
            ModelSpec::BoostHd(BoostHdConfig {
                dim_total: 4000,
                n_learners: 10,
                ..Default::default()
            }),
            ModelSpec::OnlineHd(OnlineHdConfig {
                dim: 4000,
                ..Default::default()
            }),
            ModelSpec::Baseline(BaselineSpec {
                epochs: Some(4),
                ..BaselineSpec::new(BaselineKind::Mlp, 0xD22)
            }),
        ],
        scenarios: vec![ScenarioSpec::new(
            FaultModel::BitFlip,
            vec![0.0, 1e-6, 5e-6, 1e-5, 5e-5],
        )],
    };

    println!("training the three models ...");
    baselines::spec::install();
    let campaign_data = CampaignData::new(
        train.features(),
        train.labels(),
        test.features(),
        test.labels(),
    )?;
    let report = campaign::run(&spec, campaign_data, 4)?;

    println!(
        "\n{:>10} {:>10} {:>10} {:>10}   (accuracy %, {} trials/point)",
        "p_b", "BoostHD", "OnlineHD", "DNN", trials
    );
    let scenario = &report.scenarios[0];
    for (v, &pb) in scenario.severities.iter().enumerate() {
        println!(
            "{:>10.0e} {:>10.2} {:>10.2} {:>10.2}",
            pb,
            report.model_cells(0, 0)[v].mean_accuracy_pct,
            report.model_cells(0, 1)[v].mean_accuracy_pct,
            report.model_cells(0, 2)[v].mean_accuracy_pct,
        );
    }
    println!("\nlower rows: the ensemble's redundant sub-spaces absorb corrupted learners;\nthe DNN's deep multiplicative path amplifies a single flipped exponent bit.");
    Ok(())
}
