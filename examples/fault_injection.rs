//! Fault injection: how much accuracy survives when bits flip in the
//! model's memory (the paper's Section IV-D scenario).
//!
//! Wearables keep trained parameters in small, often unprotected memories;
//! radiation and voltage droop flip bits. This example trains BoostHD,
//! OnlineHD, and the DNN baseline, then corrupts each model's stored
//! parameters at increasing per-bit flip probabilities and reports the
//! surviving accuracy.
//!
//! Run with: `cargo run --release --example fault_injection`

use boosthd_repro::prelude::*;

fn degradation<M: Classifier + Perturbable + Clone>(
    model: &M,
    x: &Matrix,
    y: &[usize],
    pb: f64,
    trials: usize,
) -> f64 {
    let mut total = 0.0;
    for t in 0..trials {
        let mut corrupted = model.clone();
        let mut rng = Rng64::seed_from(0xBAD + t as u64);
        flip_bits(&mut corrupted, pb, &mut rng);
        total += eval_harness::metrics::accuracy(&corrupted.predict_batch(x), y);
    }
    total / trials as f64 * 100.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = wearables::profiles::wesad_like();
    profile.subjects = 10;
    profile.windows_per_state = 15;
    let data = wearables::generate(&profile, 9)?;
    let (train, test) = data.split_by_subject_fraction(0.3, 3)?;
    let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;

    println!("training the three models ...");
    // The injection loop clones and corrupts concrete models, so each
    // spec-built pipeline hands back its typed view.
    baselines::spec::install();
    let online = Pipeline::fit(
        &ModelSpec::OnlineHd(OnlineHdConfig {
            dim: 4000,
            ..Default::default()
        }),
        train.features(),
        train.labels(),
    )?
    .downcast_ref::<OnlineHd>()
    .expect("spec-built OnlineHD")
    .clone();
    let boost = Pipeline::fit(
        &ModelSpec::BoostHd(BoostHdConfig {
            dim_total: 4000,
            n_learners: 10,
            ..Default::default()
        }),
        train.features(),
        train.labels(),
    )?
    .downcast_ref::<BoostHd>()
    .expect("spec-built BoostHD")
    .clone();
    let dnn = Pipeline::fit(
        &ModelSpec::Baseline(BaselineSpec {
            epochs: Some(4),
            ..BaselineSpec::new(BaselineKind::Mlp, 0xD22)
        }),
        train.features(),
        train.labels(),
    )?
    .downcast_ref::<Mlp>()
    .expect("spec-built DNN")
    .clone();

    let trials = 10;
    println!(
        "\n{:>10} {:>10} {:>10} {:>10}   (accuracy %, {} trials/point)",
        "p_b", "BoostHD", "OnlineHD", "DNN", trials
    );
    for pb in [0.0, 1e-6, 5e-6, 1e-5, 5e-5] {
        println!(
            "{:>10.0e} {:>10.2} {:>10.2} {:>10.2}",
            pb,
            degradation(&boost, test.features(), test.labels(), pb, trials),
            degradation(&online, test.features(), test.labels(), pb, trials),
            degradation(&dnn, test.features(), test.labels(), pb, trials),
        );
    }
    println!("\nlower rows: the ensemble's redundant sub-spaces absorb corrupted learners;\nthe DNN's deep multiplicative path amplifies a single flipped exponent bit.");
    Ok(())
}
