//! Streaming personalization: a deployed stress monitor adapting to a new
//! wearer, online, one window at a time.
//!
//! OnlineHD is a *single-pass online* learner — the property the paper's
//! Section I highlights for resource-constrained wearables. This example
//! trains a population model on 14 subjects, then streams the 15th
//! subject's windows through [`OnlineHd::update`]: each window is
//! predicted first (prequential evaluation) and learned from second, so
//! the curve below is honest out-of-sample accuracy while the model
//! personalizes.
//!
//! Run with: `cargo run --release --example streaming_adaptation`

use boosthd_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cohort with strong inter-subject variability so personalization
    // actually has something to adapt to.
    let mut profile = wearables::profiles::wesad_like();
    profile.subject_variability = 1.6;
    let data = wearables::generate(&profile, 77)?;

    // Hold out the last subject as "the new wearer".
    let new_wearer = data.subjects().last().expect("cohort is non-empty").id;
    let (population, wearer) = data.split_by_subjects(&[new_wearer])?;
    let (population, wearer) = wearables::dataset::normalize_pair(&population, &wearer)?;

    // Fit through the facade; streaming personalization needs OnlineHD's
    // typed `update` hook, so take the concrete view out of the pipeline.
    let mut model = Pipeline::fit(
        &ModelSpec::OnlineHd(OnlineHdConfig {
            dim: 2000,
            ..Default::default()
        }),
        population.features(),
        population.labels(),
    )?
    .downcast_ref::<OnlineHd>()
    .expect("spec-built OnlineHD")
    .clone();
    let frozen = model.clone();

    let cold_acc =
        eval_harness::metrics::accuracy(&frozen.predict_batch(wearer.features()), wearer.labels())
            * 100.0;
    println!("population model on the new wearer (no adaptation): {cold_acc:.2}%");
    println!();
    println!("streaming the wearer's windows (predict, then learn):");

    // The generator emits windows grouped by affective state; a real
    // stream interleaves states over the day. Shuffle to simulate that —
    // without it, the model drifts toward whichever state arrived last.
    let mut order: Vec<usize> = (0..wearer.len()).collect();
    let mut rng = Rng64::seed_from(3);
    rng.shuffle(&mut order);

    let chunk = 20;
    let mut seen = 0usize;
    while seen < order.len() {
        let end = (seen + chunk).min(order.len());
        let idx = &order[seen..end];
        let xs = wearer.features().select_rows(idx);
        let ys: Vec<usize> = idx.iter().map(|&i| wearer.labels()[i]).collect();
        let prequential = model.update_batch(&xs, &ys)? * 100.0;
        println!("  windows {seen:>3}..{end:<3} prequential accuracy {prequential:>6.2}%");
        seen = end;
    }

    let adapted_acc =
        eval_harness::metrics::accuracy(&model.predict_batch(wearer.features()), wearer.labels())
            * 100.0;
    println!();
    println!("after one streaming pass: {adapted_acc:.2}% (was {cold_acc:.2}%)");

    // Deployment bonus: quantize to bipolar for 1-bit on-device storage.
    model.quantize_bipolar();
    let bipolar_acc =
        eval_harness::metrics::accuracy(&model.predict_batch(wearer.features()), wearer.labels())
            * 100.0;
    println!("bipolar-quantized (32x smaller model): {bipolar_acc:.2}%");
    Ok(())
}
