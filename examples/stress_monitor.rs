//! Person-specific stress monitoring: the healthcare-fairness scenario from
//! the paper's Section IV-E (Table III).
//!
//! A stress monitor must work for *everyone* — left-handed users, shorter
//! users, older users — not just the cohort average. This example trains
//! BoostHD on all subjects outside a demographic group and reports accuracy
//! on the group's members, for each of the six Table III groups.
//!
//! Run with: `cargo run --release --example stress_monitor`

use boosthd_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = wearables::profiles::wesad_like();
    let data = wearables::generate(&profile, 2025)?;

    println!("cohort:");
    for s in data.subjects() {
        println!(
            "  subject {:>2}: {:?}, {:?}, {} years, {} cm (resting HR {:.0} bpm)",
            s.id, s.sex, s.handedness, s.age, s.height_cm, s.baseline.heart_rate
        );
    }
    println!();

    let spec = ModelSpec::BoostHd(BoostHdConfig {
        dim_total: 4000,
        n_learners: 10,
        ..Default::default()
    });
    let mut worst: Option<(String, f64)> = None;

    for group in SubjectGroup::table3_groups() {
        let (train, test) = match data.split_by_group(group) {
            Ok(split) => split,
            Err(e) => {
                println!("{:<14} skipped ({e})", group.name());
                continue;
            }
        };
        let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;
        let model = Pipeline::fit(&spec, train.features(), train.labels())?;
        let acc =
            eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels())
                * 100.0;
        println!(
            "{:<14} {:>3} test subjects  accuracy {:>6.2}%",
            group.name(),
            test.distinct_subject_ids().len(),
            acc
        );
        if worst.as_ref().is_none_or(|(_, w)| acc < *w) {
            worst = Some((group.name(), acc));
        }
    }

    if let Some((name, acc)) = worst {
        println!();
        println!("worst-served group: {name} at {acc:.2}% — the fairness number a deployment must watch.");
    }
    Ok(())
}
