//! Dimension study: how the `D_total` budget and its partitioning across
//! weak learners shape accuracy and stability (the paper's Section III /
//! Figures 3 and 6 in miniature).
//!
//! Sweeps the total dimensionality and the number of learners, prints the
//! accuracy surface, and shows the collapse when per-learner dimensionality
//! falls below the viable floor — the paper's "unstable" regime.
//!
//! Run with: `cargo run --release --example dimension_study`

use boosthd_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = wearables::profiles::wesad_like();
    profile.subjects = 8;
    profile.windows_per_state = 12;
    let data = wearables::generate(&profile, 11)?;
    let (train, test) = data.split_by_subject_fraction(0.3, 5)?;
    let (train, test) = wearables::dataset::normalize_pair(&train, &test)?;

    let dims = [200usize, 1000, 4000];
    let learners = [1usize, 10, 100];

    println!("accuracy (%) by D_total (rows) x N_L (columns); D_wl = D_total / N_L\n");
    print!("{:>8}", "D\\NL");
    for nl in learners {
        print!(" {nl:>10}");
    }
    println!();

    for dim in dims {
        print!("{dim:>8}");
        for nl in learners {
            if nl > dim {
                print!(" {:>10}", "-");
                continue;
            }
            let spec = ModelSpec::BoostHd(BoostHdConfig {
                dim_total: dim,
                n_learners: nl,
                epochs: 10,
                ..Default::default()
            });
            let model = Pipeline::fit(&spec, train.features(), train.labels())?;
            let acc = eval_harness::metrics::accuracy(
                &model.predict_batch(test.features()),
                test.labels(),
            ) * 100.0;
            print!(" {acc:>9.2}%");
        }
        println!();
    }

    println!();
    println!("reading the surface:");
    println!(" * moving right along the D_total = 4000 row, partitioning is nearly free;");
    println!(" * the D_total = 200, N_L = 100 cell starves each learner (D_wl = 2) and");
    println!("   collapses — the paper's minimum-dimensionality condition (Fig. 3b);");
    println!(" * span utilization is what the extra learners buy (see `fig5`).");

    // Show the span-utilization angle on the same trained budget. The
    // span metrics need the typed class-hypervector views, so downcast
    // the spec-built pipelines.
    let online = Pipeline::fit(
        &ModelSpec::OnlineHd(OnlineHdConfig {
            dim: 4000,
            ..Default::default()
        }),
        train.features(),
        train.labels(),
    )?;
    let boost = Pipeline::fit(
        &ModelSpec::BoostHd(BoostHdConfig {
            dim_total: 4000,
            n_learners: 10,
            ..Default::default()
        }),
        train.features(),
        train.labels(),
    )?;
    let online = online.downcast_ref::<OnlineHd>().expect("OnlineHD");
    let boost = boost.downcast_ref::<BoostHd>().expect("BoostHD");
    let sp_online = hdc::span_utilization(online.class_hypervectors())?;
    let sp_boost = hdc::span_utilization(&boost.stacked_class_hypervectors())?;
    println!(
        "\nspan utilization at D = 4000: OnlineHD SP = {:.6} (rank {}), BoostHD SP = {:.6} (rank {})",
        sp_online.sp, sp_online.rank, sp_boost.sp, sp_boost.rank
    );
    Ok(())
}
