//! The chaos campaign's determinism contract, end to end: the
//! `BENCH_resilience.json` payload must be byte-identical across server
//! thread counts (1/2/8) and across repeated runs at the same seed, and
//! the fault scenarios must actually demonstrate the resilience story
//! (availability, degrade-ladder fidelity, SEU recovery).
//!
//! These drive real loopback servers, so they are the heaviest tests in
//! the suite — each campaign runs six scenarios. The thread-count sweep
//! uses `quick` schedules to stay affordable.

use reliability::chaos::{run_campaign, ChaosConfig, TICK_MS};

#[test]
fn chaos_report_is_byte_identical_across_thread_counts() {
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            run_campaign(&ChaosConfig {
                seed: 42,
                threads,
                quick: true,
            })
            .to_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "threads=1 and threads=2 must serialize identically"
    );
    assert_eq!(
        reports[1], reports[2],
        "threads=2 and threads=8 must serialize identically"
    );
}

#[test]
fn chaos_report_covers_the_required_scenarios_and_metrics() {
    let report = run_campaign(&ChaosConfig {
        seed: 42,
        threads: 2,
        quick: true,
    });
    assert!(
        report.scenarios.len() >= 4,
        "the acceptance gate requires at least four scenarios"
    );

    let control = report.scenario("control").expect("control scenario");
    assert!(
        control.availability_pct >= 99.0,
        "no-fault availability must be >= 99%, got {}",
        control.availability_pct
    );
    assert_eq!(control.errors.iter().sum::<u64>(), 0);
    assert!(control.p99_under_fault_ms.is_some());

    let overload = report
        .scenario("overload_degrade")
        .expect("overload scenario");
    let detail = |s: &reliability::chaos::ScenarioOutcome, key: &str| -> String {
        s.detail
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    assert_eq!(
        detail(overload, "quantized_mismatches"),
        "0",
        "degraded-tier replies must be bit-identical to the standalone quantized sibling"
    );
    assert_eq!(detail(overload, "tier_trail"), "\"f32,int8\"");
    assert!(overload.recovery_time_ms >= TICK_MS);

    let seu = report.scenario("seu_reload").expect("seu scenario");
    assert_eq!(detail(seu, "restored_bit_identical"), "true");
    assert_eq!(detail(seu, "model_reloads"), "1");
    assert!((seu.availability_pct - 100.0).abs() < 1e-9);

    // Every scenario reports the three acceptance metrics.
    for s in &report.scenarios {
        assert!(
            (0.0..=100.0).contains(&s.availability_pct),
            "{}: availability in range",
            s.name
        );
        assert!(
            s.requests == 0 || s.p99_under_fault_ms.is_some(),
            "{}: p99 present when anything was served",
            s.name
        );
        // recovery_time_ms is always present (u64); nothing to assert
        // beyond the type, which the compiler guarantees.
    }
}

#[test]
fn chaos_report_is_seed_sensitive_but_replayable() {
    let a = run_campaign(&ChaosConfig {
        seed: 7,
        threads: 2,
        quick: true,
    })
    .to_json();
    let b = run_campaign(&ChaosConfig {
        seed: 7,
        threads: 2,
        quick: true,
    })
    .to_json();
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run_campaign(&ChaosConfig {
        seed: 8,
        threads: 2,
        quick: true,
    })
    .to_json();
    assert_ne!(a, c, "a different seed must change the schedule");
}
