//! Integration tests for the deployment path: persist a trained model,
//! reload it, keep adapting it online, quantize it for 1-bit storage —
//! the full lifecycle a wearable would run.

use boosthd_repro::prelude::*;

fn small_split() -> (Dataset, Dataset) {
    let profile = DatasetProfile {
        subjects: 6,
        windows_per_state: 8,
        window_samples: 240,
        ..wearables::profiles::wesad_like()
    };
    let data = wearables::generate(&profile, 13).expect("generation");
    let (train, test) = data.split_by_subject_fraction(0.34, 2).expect("split");
    wearables::dataset::normalize_pair(&train, &test).expect("normalize")
}

#[test]
fn persisted_boosthd_round_trips_through_disk() {
    let (train, test) = small_split();
    let config = BoostHdConfig {
        dim_total: 500,
        n_learners: 5,
        epochs: 5,
        ..Default::default()
    };
    let model = BoostHd::fit(&config, train.features(), train.labels()).unwrap();

    let dir = std::env::temp_dir().join("boosthd_deployment_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ensemble.bhd");
    model.save(&path).unwrap();
    let restored = BoostHd::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(
        model.predict_batch(test.features()),
        restored.predict_batch(test.features())
    );
    assert_eq!(model.alphas(), restored.alphas());
}

#[test]
fn reloaded_onlinehd_keeps_learning_online() {
    let (train, test) = small_split();
    let config = OnlineHdConfig {
        dim: 500,
        ..Default::default()
    };
    let model = OnlineHd::fit(&config, train.features(), train.labels()).unwrap();

    // Ship to the device...
    let bytes = model.to_bytes();
    let mut on_device = OnlineHd::from_bytes(&bytes).unwrap();

    // ...and keep adapting there: a full streaming pass over the test
    // wearers must not degrade accuracy on their data.
    let before =
        eval_harness::metrics::accuracy(&on_device.predict_batch(test.features()), test.labels());
    on_device
        .update_batch(test.features(), test.labels())
        .unwrap();
    let after =
        eval_harness::metrics::accuracy(&on_device.predict_batch(test.features()), test.labels());
    assert!(
        after >= before - 0.02,
        "online adaptation must not hurt: {before} -> {after}"
    );
}

#[test]
fn quantized_models_survive_persistence_and_faults() {
    let (train, test) = small_split();
    let config = BoostHdConfig {
        dim_total: 1000,
        n_learners: 10,
        ..Default::default()
    };
    let mut model = BoostHd::fit(&config, train.features(), train.labels()).unwrap();
    let full_acc =
        eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels());

    // Quantize for 1-bit storage, round-trip through bytes, then inject
    // faults: the pipeline the robustness experiments assume.
    model.quantize_bipolar();
    let mut restored = BoostHd::from_bytes(&model.to_bytes()).unwrap();
    let quant_acc =
        eval_harness::metrics::accuracy(&restored.predict_batch(test.features()), test.labels());
    // Sign-quantization noise on per-learner similarities scales like
    // 1/√D_wl; at this test's deliberately small D_wl = 100 that is ~0.1,
    // so borderline windows flip and the budget must be looser than at the
    // paper's D_wl = 400 (tests/quantized.rs holds the 3-point bound there).
    assert!(
        quant_acc > full_acc - 0.12,
        "bipolar quantization cost too much: {full_acc} -> {quant_acc}"
    );

    let mut rng = Rng64::seed_from(5);
    let report = flip_bits(&mut restored, 1e-5, &mut rng);
    assert!(report.words > 0);
    let faulty_acc =
        eval_harness::metrics::accuracy(&restored.predict_batch(test.features()), test.labels());
    assert!(
        faulty_acc > 0.5,
        "ensemble should absorb 1e-5 bit flips, got {faulty_acc}"
    );
}

#[test]
fn corrupted_blob_never_panics() {
    let (train, _test) = small_split();
    let config = OnlineHdConfig {
        dim: 128,
        epochs: 2,
        ..Default::default()
    };
    let model = OnlineHd::fit(&config, train.features(), train.labels()).unwrap();
    let bytes = model.to_bytes();
    // Truncate at every eighth boundary — every failure must be an Err,
    // never a panic or a silently wrong model.
    for cut in (0..bytes.len()).step_by(bytes.len() / 8 + 1) {
        assert!(OnlineHd::from_bytes(&bytes[..cut]).is_err());
    }
    // Flip a byte mid-payload: either rejected or produces a model of the
    // same shape (a single mutated f32 cannot change structure).
    let mut mutated = bytes.clone();
    let mid = mutated.len() / 2;
    mutated[mid] ^= 0x40;
    if let Ok(m) = OnlineHd::from_bytes(&mutated) {
        assert_eq!(m.num_classes(), model.num_classes());
        assert_eq!(m.dim(), model.dim());
    }
}
