//! Integration tests for the bitpacked inference backend: quantized models
//! must track their f32 parents on the wearable workload, survive disk
//! round-trips, and absorb packed-word bit flips — the full deployment
//! story for a 1-bit associative memory.

use boosthd::{QuantizedBoostHd, QuantizedHd};
use boosthd_repro::prelude::*;
use reliability::flip_sign_bits;

fn small_split() -> (Dataset, Dataset) {
    let profile = DatasetProfile {
        subjects: 6,
        windows_per_state: 8,
        window_samples: 240,
        ..wearables::profiles::wesad_like()
    };
    let data = wearables::generate(&profile, 21).expect("generation");
    let (train, test) = data.split_by_subject_fraction(0.34, 3).expect("split");
    wearables::dataset::normalize_pair(&train, &test).expect("normalize")
}

#[test]
fn quantized_boosthd_stays_within_three_points_of_f32_on_wesad_like() {
    let (train, test) = small_split();
    // The paper's configuration: D_total = 4000, N_L = 10 → D_wl = 400.
    let config = BoostHdConfig {
        dim_total: 4000,
        n_learners: 10,
        ..Default::default()
    };
    let model = BoostHd::fit(&config, train.features(), train.labels()).unwrap();
    let f32_acc =
        eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels());

    // The recommended deployment flow: a few epochs of quantization-aware
    // refit before freezing. Holds the 3-point budget at D_wl = 400.
    let refit = model
        .quantize_with_refit(train.features(), train.labels(), 5)
        .unwrap();
    let refit_acc =
        eval_harness::metrics::accuracy(&refit.predict_batch(test.features()), test.labels());
    assert!(
        refit_acc >= f32_acc - 0.03,
        "bitpacked BoostHD dropped more than 3 points: f32 {f32_acc} -> packed {refit_acc}"
    );

    // Data-free sign binarization is lossier (sign-rounding noise ~1/√D_wl
    // per learner) but must stay in the same accuracy regime.
    let plain = model.quantize();
    let plain_acc =
        eval_harness::metrics::accuracy(&plain.predict_batch(test.features()), test.labels());
    assert!(
        plain_acc >= f32_acc - 0.10,
        "data-free binarization collapsed: f32 {f32_acc} -> packed {plain_acc}"
    );
    assert!(
        refit_acc >= plain_acc,
        "refit should not be worse than data-free: {plain_acc} -> {refit_acc}"
    );
}

#[test]
fn quantized_onlinehd_stays_within_three_points_of_f32_on_wesad_like() {
    let (train, test) = small_split();
    let config = OnlineHdConfig {
        dim: 4000,
        ..Default::default()
    };
    let model = OnlineHd::fit(&config, train.features(), train.labels()).unwrap();
    let quantized = model.quantize();
    let f32_acc =
        eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels());
    let quant_acc =
        eval_harness::metrics::accuracy(&quantized.predict_batch(test.features()), test.labels());
    assert!(
        quant_acc >= f32_acc - 0.03,
        "bitpacked OnlineHD dropped more than 3 points: f32 {f32_acc} -> packed {quant_acc}"
    );
}

#[test]
fn quantized_ensemble_survives_disk_and_packed_faults() {
    let (train, test) = small_split();
    let config = BoostHdConfig {
        dim_total: 2000,
        n_learners: 10,
        ..Default::default()
    };
    let quantized = BoostHd::fit(&config, train.features(), train.labels())
        .unwrap()
        .quantize();

    // Ship to the device and back.
    let dir = std::env::temp_dir().join("boosthd_quantized_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ensemble.qbhd");
    quantized.save(&path).unwrap();
    let mut on_device = QuantizedBoostHd::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        quantized.predict_batch(test.features()),
        on_device.predict_batch(test.features())
    );

    // Inject sign-bit upsets at the packed words. A flipped sign bit
    // perturbs one learner's similarity by exactly 2/D_wl, so the
    // α-weighted vote absorbs sparse flips.
    let clean_acc =
        eval_harness::metrics::accuracy(&on_device.predict_batch(test.features()), test.labels());
    let mut rng = Rng64::seed_from(11);
    let report = flip_sign_bits(&mut on_device, 1e-3, &mut rng);
    assert!(report.flipped > 0);
    let faulty_acc =
        eval_harness::metrics::accuracy(&on_device.predict_batch(test.features()), test.labels());
    assert!(
        faulty_acc > clean_acc - 0.05,
        "packed ensemble should absorb 0.1% sign flips: {clean_acc} -> {faulty_acc}"
    );
}

#[test]
fn quantized_onlinehd_round_trips_and_batches_consistently() {
    let (train, test) = small_split();
    let config = OnlineHdConfig {
        dim: 1000,
        ..Default::default()
    };
    let quantized = OnlineHd::fit(&config, train.features(), train.labels())
        .unwrap()
        .quantize();
    let restored = QuantizedHd::from_bytes(&quantized.to_bytes()).unwrap();
    let batch = restored.predict_batch(test.features());
    let rowwise: Vec<usize> = (0..test.features().rows())
        .map(|r| restored.predict(test.features().row(r)))
        .collect();
    assert_eq!(batch, rowwise);
    assert_eq!(batch, restored.predict_batch_parallel(test.features(), 4));
}
