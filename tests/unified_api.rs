//! Integration tests for the unified `ModelSpec → Pipeline` API: the
//! config-driven path every bench binary, example, and the `hdrun` CLI now
//! goes through, exercised end to end on the wearable dataset.

use boosthd_repro::prelude::*;
use boosthd_repro::serve::{EngineConfig, InferenceEngine};

fn small_split() -> (Dataset, Dataset) {
    let profile = DatasetProfile {
        subjects: 6,
        windows_per_state: 8,
        window_samples: 240,
        ..wearables::profiles::wesad_like()
    };
    let data = wearables::generate(&profile, 77).expect("generation");
    let (train, test) = data.split_by_subject_fraction(0.34, 5).expect("split");
    wearables::dataset::normalize_pair(&train, &test).expect("normalize")
}

fn hdc_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::OnlineHd(OnlineHdConfig {
            dim: 256,
            epochs: 5,
            ..Default::default()
        }),
        ModelSpec::CentroidHd(CentroidHdConfig {
            dim: 256,
            ..Default::default()
        }),
        ModelSpec::BoostHd(BoostHdConfig {
            dim_total: 400,
            n_learners: 5,
            epochs: 5,
            ..Default::default()
        }),
        ModelSpec::QuantizedOnlineHd {
            base: OnlineHdConfig {
                dim: 256,
                epochs: 5,
                ..Default::default()
            },
            refit_epochs: 2,
        },
        ModelSpec::QuantizedBoostHd {
            base: BoostHdConfig {
                dim_total: 400,
                n_learners: 5,
                epochs: 5,
                ..Default::default()
            },
            refit_epochs: 2,
        },
    ]
}

#[test]
fn every_family_trains_through_one_call_and_beats_chance() {
    baselines::spec::install();
    let (train, test) = small_split();
    let chance = 1.0 / train.num_classes() as f64;
    let mut specs = hdc_specs();
    specs.push(ModelSpec::Baseline(BaselineSpec::new(
        BaselineKind::RandomForest,
        3,
    )));
    specs.push(ModelSpec::Baseline(BaselineSpec::new(BaselineKind::Svm, 3)));
    for spec in specs {
        let model = Pipeline::fit(&spec, train.features(), train.labels())
            .unwrap_or_else(|e| panic!("{} failed: {e}", spec.kind_tag()));
        let acc =
            eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels());
        assert!(
            acc > chance + 0.15,
            "{}: accuracy {acc} barely beats chance {chance}",
            spec.kind_tag()
        );
    }
}

#[test]
fn file_envelope_round_trips_every_hdc_family_bit_identically() {
    let (train, test) = small_split();
    let dir = std::env::temp_dir().join("boosthd_unified_api_test");
    std::fs::create_dir_all(&dir).unwrap();
    for (i, spec) in hdc_specs().into_iter().enumerate() {
        let pipeline = Pipeline::fit(&spec, train.features(), train.labels()).unwrap();
        let path = dir.join(format!("model_{i}.bhde"));
        pipeline.save(&path).unwrap();
        let restored = Pipeline::load(&path).unwrap();
        assert_eq!(
            pipeline.predict_batch(test.features()),
            restored.predict_batch(test.features()),
            "{} drifted through the file envelope",
            spec.kind_tag()
        );
        assert_eq!(restored.spec(), &spec);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn confidence_gating_never_hurts_accuracy_on_kept_windows() {
    let (train, test) = small_split();
    // Softmaxed 3-class confidences sit just above 1/3 for uncertain
    // windows, so a gate a few points over chance separates the tail
    // without starving throughput.
    let pipeline = Pipeline::fit(&hdc_specs()[2], train.features(), train.labels())
        .unwrap()
        .with_abstain_threshold(0.36);
    let predictions = pipeline.predict_batch_with_confidence(test.features());
    let all_correct = predictions
        .iter()
        .zip(test.labels())
        .filter(|(p, &t)| p.class == t)
        .count();
    let all_acc = all_correct as f64 / predictions.len() as f64;
    let kept: Vec<(usize, usize)> = predictions
        .iter()
        .zip(test.labels())
        .filter(|(p, _)| !p.abstained)
        .map(|(p, &t)| (p.class, t))
        .collect();
    // The gate must actually pass most traffic on this easy profile and
    // the kept subset must be at least as accurate as the ungated stream.
    assert!(kept.len() > predictions.len() / 2, "gate too aggressive");
    let kept_acc = kept.iter().filter(|(p, t)| p == t).count() as f64 / kept.len() as f64;
    assert!(
        kept_acc >= all_acc - 1e-9,
        "gating reduced accuracy: kept {kept_acc} vs all {all_acc}"
    );
}

#[test]
fn serving_engine_consumes_pipelines_directly() {
    let (train, test) = small_split();
    let pipeline = Pipeline::fit(&hdc_specs()[0], train.features(), train.labels()).unwrap();
    let engine = InferenceEngine::with_config(
        &pipeline,
        EngineConfig {
            max_batch: 13,
            threads: Some(2),
            ..Default::default()
        },
    );
    let outcome = engine.serve((0..test.len()).map(|r| test.features().row(r).to_vec()));
    assert_eq!(outcome.predictions, pipeline.predict_batch(test.features()));
}

#[test]
fn checked_in_hdrun_spec_stays_parseable() {
    // The CI smoke job trains from this file; a vocabulary drift must fail
    // here, in unit tests, not in the smoke job.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/wesad_boosthd.toml"
    ))
    .expect("specs/wesad_boosthd.toml is checked in");
    let spec = ModelSpec::from_toml_str(&text).expect("spec parses");
    assert_eq!(spec.kind_tag(), "boost_hd");
    assert_eq!(spec.display_name(), "BoostHD");
    // And it round-trips through the writer.
    assert_eq!(ModelSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
}

#[test]
fn specs_reseed_uniformly_for_repeated_runs() {
    let base = hdc_specs()[2].clone();
    let a = base.clone().with_seed(100);
    let b = base.clone().with_seed(101);
    assert_ne!(a, b);
    let (train, _) = small_split();
    let ma = Pipeline::fit(&a, train.features(), train.labels()).unwrap();
    let mb = Pipeline::fit(&a, train.features(), train.labels()).unwrap();
    // Same spec → bit-identical model behavior (determinism through the
    // facade).
    assert_eq!(
        ma.predict_batch(train.features()),
        mb.predict_batch(train.features())
    );
}
