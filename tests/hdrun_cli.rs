//! Integration tests for the `hdrun` CLI binary: the full
//! train → save → load → eval → serve → campaign lifecycle through a
//! temporary directory, plus the failure modes (garbage spec files, wrong
//! paths, malformed arguments) that until now only a CI smoke job
//! exercised.
//!
//! Every test invokes the real binary (`CARGO_BIN_EXE_hdrun`) and asserts
//! on exit codes and message fragments, so regressions in argument
//! parsing, spec validation, or error wording fail `cargo test` directly.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique per-test scratch directory under the system temp dir,
/// removed on drop (no external tempdir crate in the dependency policy).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "hdrun_cli_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create tempdir");
        Self { path }
    }

    fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn hdrun(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hdrun"))
        .args(args)
        .output()
        .expect("spawn hdrun")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn assert_fails_mentioning(out: &Output, fragments: &[&str]) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit code 2, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        stdout_of(out),
        stderr_of(out)
    );
    let err = stderr_of(out);
    for fragment in fragments {
        assert!(
            err.contains(fragment),
            "stderr should mention `{fragment}`:\n{err}"
        );
    }
}

/// A tiny, fast training spec (seconds, not minutes, in debug builds).
fn tiny_model_spec(dir: &TempDir) -> PathBuf {
    let path = dir.file("tiny.toml");
    std::fs::write(
        &path,
        "[model]\nkind = \"boost_hd\"\ndim_total = 200\nn_learners = 4\nepochs = 2\nseed = 7\n\n\
         [dataset]\nprofile = \"wesad_like\"\nsubjects = 4\nwindows_per_state = 4\n\
         window_samples = 160\nseed = 7\ntest_fraction = 0.3\n\n\
         [serve]\nmax_batch = 8\nwindows = 12\nabstain_threshold = 0.4\n",
    )
    .expect("write spec");
    path
}

/// A tiny campaign spec reusing the same dataset table.
fn tiny_campaign_spec(dir: &TempDir) -> PathBuf {
    let path = dir.file("campaign.toml");
    std::fs::write(
        &path,
        "[campaign]\nname = \"cli_test\"\nseed = 7\ntrials = 2\nabstain_threshold = 0.3\n\n\
         [dataset]\nprofile = \"wesad_like\"\nsubjects = 4\nwindows_per_state = 4\n\
         window_samples = 160\nseed = 7\ntest_fraction = 0.3\n\n\
         [model-1]\nkind = \"centroid_hd\"\ndim = 128\nseed = 7\n\n\
         [model-2]\nkind = \"online_hd\"\ndim = 128\nepochs = 2\nseed = 7\n\n\
         [scenario-1]\nfault = \"bit_flip\"\nseverities = [0.0, 0.001]\n\n\
         [scenario-2]\nfault = \"gaussian_noise\"\nseverities = [0.0, 0.5]\n\n\
         [stream]\nwindows = 10\nmax_batch = 4\nmodel = 1\nfault = \"gaussian_noise\"\nseverity = 0.5\n",
    )
    .expect("write campaign spec");
    path
}

#[test]
fn full_lifecycle_train_save_load_eval_serve_campaign() {
    let dir = TempDir::new("lifecycle");
    let spec = tiny_model_spec(&dir);
    let model = dir.file("model.bhde");

    // train + save
    let out = hdrun(&[
        "train",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "train: {}", stderr_of(&out));
    let train_stdout = stdout_of(&out);
    assert!(train_stdout.contains("test acc"), "{train_stdout}");
    assert!(train_stdout.contains("saved envelope"), "{train_stdout}");
    assert!(model.exists(), "envelope file written");

    // load + eval: the reloaded envelope scores the regenerated split.
    let out = hdrun(&[
        "eval",
        "--spec",
        spec.to_str().unwrap(),
        "--model",
        model.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "eval: {}", stderr_of(&out));
    let eval_stdout = stdout_of(&out);
    assert!(eval_stdout.contains("eval: BoostHD"), "{eval_stdout}");
    assert!(eval_stdout.contains("confidence:"), "{eval_stdout}");

    // train and eval agree on the test accuracy of the same split.
    let acc_of = |s: &str| {
        let at = s.find("test acc ").expect("test acc field") + "test acc ".len();
        s[at..].split('%').next().unwrap().to_string()
    };
    assert_eq!(acc_of(&train_stdout), acc_of(&eval_stdout));

    // serve the saved envelope over a window stream.
    let out = hdrun(&[
        "serve",
        "--spec",
        spec.to_str().unwrap(),
        "--model",
        model.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "serve: {}", stderr_of(&out));
    assert!(
        stdout_of(&out).contains("streamed windows"),
        "{}",
        stdout_of(&out)
    );

    // campaign over the same tempdir, report written to disk.
    let campaign = tiny_campaign_spec(&dir);
    let report = dir.file("report.json");
    let out = hdrun(&[
        "campaign",
        campaign.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "campaign: {}", stderr_of(&out));
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(json.contains("\"format\": \"boosthd.campaign.report\""));
    assert!(json.contains("\"bit_flip\"") && json.contains("\"gaussian_noise\""));
    assert!(json.contains("\"streaming\""), "stream table ran");
}

#[test]
fn campaign_reports_are_identical_across_thread_flags() {
    let dir = TempDir::new("threads");
    let campaign = tiny_campaign_spec(&dir);
    let mut reports = Vec::new();
    for threads in ["1", "2", "8"] {
        let report = dir.file(&format!("report_{threads}.json"));
        let out = hdrun(&[
            "campaign",
            campaign.to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
            "--threads",
            threads,
        ]);
        assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
        reports.push(std::fs::read(&report).unwrap());
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

#[test]
fn missing_and_wrong_paths_fail_descriptively() {
    let dir = TempDir::new("paths");
    let spec = tiny_model_spec(&dir);

    // Nonexistent spec file names the path.
    let out = hdrun(&["train", "--spec", "no/such/spec.toml"]);
    assert_fails_mentioning(&out, &["no/such/spec.toml", "cannot read spec file"]);

    // eval without --model explains the requirement and prints usage.
    let out = hdrun(&["eval", "--spec", spec.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["eval needs --model", "usage:"]);

    // eval against a model path that does not exist.
    let missing = dir.file("missing.bhde");
    let out = hdrun(&[
        "eval",
        "--spec",
        spec.to_str().unwrap(),
        "--model",
        missing.to_str().unwrap(),
    ]);
    assert_fails_mentioning(&out, &["hdrun:"]);

    // A non-envelope file fails the magic check, not a panic.
    let garbage_model = dir.file("garbage.bhde");
    std::fs::write(&garbage_model, b"definitely not an envelope").unwrap();
    let out = hdrun(&[
        "eval",
        "--spec",
        spec.to_str().unwrap(),
        "--model",
        garbage_model.to_str().unwrap(),
    ]);
    assert_fails_mentioning(&out, &["bad magic"]);
}

#[test]
fn garbage_specs_fail_descriptively() {
    let dir = TempDir::new("specs");

    // Unparseable TOML names the line.
    let bad_toml = dir.file("bad.toml");
    std::fs::write(&bad_toml, "[model\nkind = \"boost_hd\"\n").unwrap();
    let out = hdrun(&["train", "--spec", bad_toml.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["line 1", "unterminated table header"]);

    // A misspelled hyperparameter is rejected, not silently defaulted.
    let misspelled = dir.file("misspelled.toml");
    std::fs::write(&misspelled, "[model]\nkind = \"boost_hd\"\nn_leaners = 4\n").unwrap();
    let out = hdrun(&["train", "--spec", misspelled.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["n_leaners", "allowed"]);

    // Missing [model] table for train.
    let no_model = dir.file("no_model.toml");
    std::fs::write(&no_model, "[dataset]\nsubjects = 4\n").unwrap();
    let out = hdrun(&["train", "--spec", no_model.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["no [model] table"]);

    // Unknown dataset profile.
    let bad_profile = dir.file("bad_profile.toml");
    std::fs::write(
        &bad_profile,
        "[model]\nkind = \"centroid_hd\"\n\n[dataset]\nprofile = \"mars_rover\"\n",
    )
    .unwrap();
    let out = hdrun(&["train", "--spec", bad_profile.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["mars_rover", "unknown dataset profile"]);

    // Campaign spec without scenarios.
    let no_scenarios = dir.file("no_scenarios.toml");
    std::fs::write(&no_scenarios, "[model]\nkind = \"centroid_hd\"\ndim = 64\n").unwrap();
    let out = hdrun(&["campaign", no_scenarios.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["no scenario tables"]);

    // Campaign [stream] severity must be finite and non-negative.
    let bad_stream = dir.file("bad_stream.toml");
    std::fs::write(
        &bad_stream,
        "[model]\nkind = \"centroid_hd\"\ndim = 64\n\n\
         [scenario]\nfault = \"bit_flip\"\nseverities = [0.0]\n\n\
         [stream]\nwindows = 5\nfault = \"gaussian_noise\"\nseverity = -0.5\n",
    )
    .unwrap();
    let out = hdrun(&["campaign", bad_stream.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["[stream] severity", "finite non-negative"]);

    // Campaign scenario with an unknown fault.
    let bad_fault = dir.file("bad_fault.toml");
    std::fs::write(
        &bad_fault,
        "[model]\nkind = \"centroid_hd\"\ndim = 64\n\n\
         [scenario]\nfault = \"cosmic_rays\"\nseverities = [0.1]\n",
    )
    .unwrap();
    let out = hdrun(&["campaign", bad_fault.to_str().unwrap()]);
    assert_fails_mentioning(&out, &["cosmic_rays", "known:"]);
}

#[test]
fn malformed_arguments_fail_descriptively() {
    // No command at all prints usage.
    let out = hdrun(&[]);
    assert_fails_mentioning(&out, &["usage:"]);

    // Unknown command.
    let out = hdrun(&["explode", "--spec", "x.toml"]);
    assert_fails_mentioning(&out, &["unknown command `explode`"]);

    // Unknown flag.
    let out = hdrun(&["train", "--spec", "x.toml", "--loud"]);
    assert_fails_mentioning(&out, &["unknown argument --loud"]);

    // Flag without its value.
    let out = hdrun(&["train", "--spec"]);
    assert_fails_mentioning(&out, &["--spec needs a value"]);

    // Garbage --threads.
    let out = hdrun(&["campaign", "spec.toml", "--threads", "zero"]);
    assert_fails_mentioning(&out, &["--threads needs a positive integer"]);
    let out = hdrun(&["campaign", "spec.toml", "--threads", "0"]);
    assert_fails_mentioning(&out, &["--threads needs a positive integer"]);

    // Missing spec entirely.
    let out = hdrun(&["train"]);
    assert_fails_mentioning(&out, &["--spec is required"]);
}

#[test]
fn campaign_without_out_prints_the_report_to_stdout() {
    let dir = TempDir::new("stdout");
    let campaign = dir.file("minimal.toml");
    std::fs::write(
        &campaign,
        "[campaign]\ntrials = 1\n\n\
         [dataset]\nsubjects = 4\nwindows_per_state = 3\nwindow_samples = 160\nseed = 3\n\n\
         [model]\nkind = \"centroid_hd\"\ndim = 64\nseed = 3\n\n\
         [scenario]\nfault = \"channel_dropout\"\nseverities = [0.0, 0.3]\n",
    )
    .unwrap();
    let out = hdrun(&["campaign", campaign.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("\"format\": \"boosthd.campaign.report\""),
        "{stdout}"
    );
    assert!(stdout.trim_end().ends_with('}'), "JSON is the last output");
}
