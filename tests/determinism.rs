//! Reproducibility invariants: every stochastic component must replay
//! exactly from its seed, across crate boundaries.

use boosthd_repro::prelude::*;

fn profile() -> DatasetProfile {
    DatasetProfile {
        subjects: 5,
        windows_per_state: 6,
        window_samples: 200,
        ..wearables::profiles::stress_predict_like()
    }
}

#[test]
fn dataset_generation_replays_exactly() {
    let a = wearables::generate(&profile(), 77).unwrap();
    let b = wearables::generate(&profile(), 77).unwrap();
    assert_eq!(a, b);
}

#[test]
fn full_training_pipeline_replays_exactly() {
    let run = || {
        let data = wearables::generate(&profile(), 5).unwrap();
        let (train, test) = data.split_by_subject_fraction(0.4, 2).unwrap();
        let (train, test) = wearables::dataset::normalize_pair(&train, &test).unwrap();
        let model = BoostHd::fit(
            &BoostHdConfig {
                dim_total: 300,
                n_learners: 6,
                epochs: 5,
                ..Default::default()
            },
            train.features(),
            train.labels(),
        )
        .unwrap();
        (model.alphas(), model.predict_batch(test.features()))
    };
    let (alphas_a, preds_a) = run();
    let (alphas_b, preds_b) = run();
    assert_eq!(alphas_a, alphas_b);
    assert_eq!(preds_a, preds_b);
}

#[test]
fn bitflip_injection_replays_exactly() {
    let data = wearables::generate(&profile(), 5).unwrap();
    let model = OnlineHd::fit(
        &OnlineHdConfig {
            dim: 256,
            epochs: 5,
            ..Default::default()
        },
        data.features(),
        data.labels(),
    )
    .unwrap();
    let corrupt = |seed: u64| {
        let mut m = model.clone();
        let mut rng = Rng64::seed_from(seed);
        let report = flip_bits(&mut m, 1e-3, &mut rng);
        (report, m.class_hypervectors().clone())
    };
    let (report_a, params_a) = corrupt(9);
    let (report_b, params_b) = corrupt(9);
    assert_eq!(report_a, report_b);
    assert_eq!(params_a, params_b);
    let (_, params_c) = corrupt(10);
    assert_ne!(params_a, params_c);
}

#[test]
fn different_seeds_give_different_models_but_same_api_shape() {
    let data = wearables::generate(&profile(), 5).unwrap();
    let fit = |seed| {
        BoostHd::fit(
            &BoostHdConfig {
                dim_total: 300,
                n_learners: 6,
                epochs: 5,
                seed,
                ..Default::default()
            },
            data.features(),
            data.labels(),
        )
        .unwrap()
    };
    let a = fit(1);
    let b = fit(2);
    assert_eq!(a.num_learners(), b.num_learners());
    assert_eq!(a.num_classes(), b.num_classes());
    assert_ne!(
        a.learner_class_hypervectors(0),
        b.learner_class_hypervectors(0)
    );
}
