//! Cross-crate integration tests: the full data → preprocess → train →
//! evaluate pipeline, exercised the way the benchmark binaries use it.

use boosthd_repro::prelude::*;

fn small_profile() -> DatasetProfile {
    DatasetProfile {
        subjects: 6,
        windows_per_state: 8,
        window_samples: 240,
        ..wearables::profiles::wesad_like()
    }
}

fn small_split() -> (Dataset, Dataset) {
    let data = wearables::generate(&small_profile(), 31).expect("generation");
    let (train, test) = data.split_by_subject_fraction(0.34, 5).expect("split");
    wearables::dataset::normalize_pair(&train, &test).expect("normalize")
}

#[test]
fn boosthd_learns_synthetic_wesad_end_to_end() {
    let (train, test) = small_split();
    let config = BoostHdConfig {
        dim_total: 1000,
        n_learners: 10,
        ..Default::default()
    };
    let model = BoostHd::fit(&config, train.features(), train.labels()).unwrap();
    let acc = eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels());
    assert!(acc > 0.75, "end-to-end accuracy {acc}");
}

#[test]
fn every_model_beats_chance_on_the_clean_profile() {
    let (train, test) = small_split();
    let chance = 1.0 / train.num_classes() as f64;
    let models: Vec<(&str, Box<dyn Classifier>)> = vec![
        (
            "adaboost",
            Box::new(
                AdaBoost::fit(&AdaBoostConfig::default(), train.features(), train.labels())
                    .unwrap(),
            ),
        ),
        (
            "random forest",
            Box::new(
                RandomForest::fit(
                    &RandomForestConfig::default(),
                    train.features(),
                    train.labels(),
                )
                .unwrap(),
            ),
        ),
        (
            "gbt",
            Box::new(
                GradientBoostedTrees::fit(
                    &GradientBoostingConfig::default(),
                    train.features(),
                    train.labels(),
                )
                .unwrap(),
            ),
        ),
        (
            "svm",
            Box::new(
                LinearSvm::fit(
                    &LinearSvmConfig::default(),
                    train.features(),
                    train.labels(),
                )
                .unwrap(),
            ),
        ),
        (
            "mlp",
            Box::new(Mlp::fit(&MlpConfig::small(), train.features(), train.labels()).unwrap()),
        ),
        (
            "onlinehd",
            Box::new(
                OnlineHd::fit(
                    &OnlineHdConfig {
                        dim: 512,
                        ..Default::default()
                    },
                    train.features(),
                    train.labels(),
                )
                .unwrap(),
            ),
        ),
        (
            "centroidhd",
            Box::new(
                CentroidHd::fit(
                    &CentroidHdConfig {
                        dim: 512,
                        ..Default::default()
                    },
                    train.features(),
                    train.labels(),
                )
                .unwrap(),
            ),
        ),
    ];
    for (name, model) in models {
        let acc =
            eval_harness::metrics::accuracy(&model.predict_batch(test.features()), test.labels());
        assert!(acc > chance + 0.15, "{name} barely beats chance: {acc}");
    }
}

#[test]
fn subject_splits_do_not_leak() {
    let data = wearables::generate(&small_profile(), 8).expect("generation");
    let (train, test) = data.split_by_subject_fraction(0.34, 9).expect("split");
    for sid in test.subject_ids() {
        assert!(!train.subject_ids().contains(sid), "subject {sid} leaked");
    }
    assert_eq!(train.len() + test.len(), data.len());
}

#[test]
fn boosthd_serialization_round_trips_predictions() {
    let (train, test) = small_split();
    let config = BoostHdConfig {
        dim_total: 400,
        n_learners: 5,
        epochs: 5,
        ..Default::default()
    };
    let model = BoostHd::fit(&config, train.features(), train.labels()).unwrap();
    // serde round-trip through the derived impls (postcard/json are not in
    // the dependency set; a custom bincode-like check via serde_test would
    // be overkill — clone + compare verifies the Clone path instead, and
    // the serde derives are compile-checked by this call).
    let cloned = model.clone();
    assert_eq!(
        model.predict_batch(test.features()),
        cloned.predict_batch(test.features())
    );
}

#[test]
fn bitflip_robustness_ordering_holds_end_to_end() {
    // At a harsh flip rate, the boosted ensemble should retain at least as
    // much accuracy as the strong learner on average.
    let (train, test) = small_split();
    let online = OnlineHd::fit(
        &OnlineHdConfig {
            dim: 1000,
            ..Default::default()
        },
        train.features(),
        train.labels(),
    )
    .unwrap();
    let boost = BoostHd::fit(
        &BoostHdConfig {
            dim_total: 1000,
            n_learners: 10,
            ..Default::default()
        },
        train.features(),
        train.labels(),
    )
    .unwrap();
    let trials = 12;
    let pb = 2e-4;
    let mean_acc = |make: &dyn Fn(u64) -> Vec<usize>| -> f64 {
        (0..trials)
            .map(|t| {
                let preds = make(t);
                eval_harness::metrics::accuracy(&preds, test.labels())
            })
            .sum::<f64>()
            / trials as f64
    };
    let online_acc = mean_acc(&|t| {
        let mut m = online.clone();
        let mut rng = Rng64::seed_from(100 + t);
        flip_bits(&mut m, pb, &mut rng);
        m.predict_batch(test.features())
    });
    let boost_acc = mean_acc(&|t| {
        let mut m = boost.clone();
        let mut rng = Rng64::seed_from(100 + t);
        flip_bits(&mut m, pb, &mut rng);
        m.predict_batch(test.features())
    });
    assert!(
        boost_acc >= online_acc - 0.05,
        "ensemble should absorb faults at least as well: boost {boost_acc} vs online {online_acc}"
    );
}

#[test]
fn imbalance_pipeline_produces_macro_fair_numbers() {
    let (train, test) = small_split();
    let mut rng = Rng64::seed_from(3);
    let keep = reliability::imbalance::imbalanced_indices(
        train.labels(),
        reliability::imbalance::ImbalanceSpec::from_reduction(0, 0.6),
        &mut rng,
    );
    let sub = train.select(&keep);
    assert!(sub.len() < train.len());
    let model = BoostHd::fit(
        &BoostHdConfig {
            dim_total: 1000,
            n_learners: 10,
            ..Default::default()
        },
        sub.features(),
        sub.labels(),
    )
    .unwrap();
    let preds = model.predict_batch(test.features());
    let macro_acc = eval_harness::metrics::macro_accuracy(&preds, test.labels(), 3);
    assert!(
        macro_acc > 0.6,
        "macro accuracy under imbalance: {macro_acc}"
    );
}

#[test]
fn hdc_theory_consistency_with_trained_models() {
    // Span utilization of the trained ensemble dominates the strong
    // learner's — the Figure 5 property as an invariant.
    let (train, _test) = small_split();
    let online = OnlineHd::fit(
        &OnlineHdConfig {
            dim: 1000,
            ..Default::default()
        },
        train.features(),
        train.labels(),
    )
    .unwrap();
    let boost = BoostHd::fit(
        &BoostHdConfig {
            dim_total: 1000,
            n_learners: 10,
            ..Default::default()
        },
        train.features(),
        train.labels(),
    )
    .unwrap();
    let sp_online = hdc::span_utilization(online.class_hypervectors()).unwrap();
    let sp_boost = hdc::span_utilization(&boost.stacked_class_hypervectors()).unwrap();
    assert!(sp_boost.rank > sp_online.rank);
    assert!(sp_boost.sp > sp_online.sp);
}

#[test]
fn continuous_monitoring_pipeline_serves_streamed_windows() {
    // The serving tentpole end to end: train on the dataset view, fit the
    // normalizer on the training split, then serve the streaming view
    // (subjects × signals → preprocess → window) through the micro-batching
    // engine and check the answers are both accurate and identical to
    // row-at-a-time prediction.
    use boosthd_repro::serve;
    use wearables::preprocess::Normalizer;
    use wearables::streaming::WindowStream;

    let profile = small_profile();
    let data = wearables::generate(&profile, 41).expect("generation");
    let normalizer = Normalizer::fit(data.features()).expect("normalizer");
    let model = OnlineHd::fit(
        &OnlineHdConfig {
            dim: 1000,
            ..Default::default()
        },
        &normalizer.apply(data.features()),
        data.labels(),
    )
    .unwrap();

    let stream = WindowStream::new(&profile, profile.window_samples / 2, 42).expect("stream");
    let engine = serve::InferenceEngine::with_config(
        &model,
        serve::EngineConfig {
            max_batch: 32,
            ..Default::default()
        },
    );
    let (windows, outcome) = engine.serve_windows(stream, |w| {
        let row = Matrix::from_rows(std::slice::from_ref(&w.features)).unwrap();
        normalizer.apply(&row).row(0).to_vec()
    });
    assert_eq!(outcome.predictions.len(), windows.len());
    assert!(outcome.stats.batches >= windows.len() / 32);
    assert_eq!(outcome.stats.latency.count, windows.len());

    // Accuracy well above the 3-class chance floor.
    let correct = outcome
        .predictions
        .iter()
        .zip(&windows)
        .filter(|(p, w)| **p == w.state.label())
        .count();
    let acc = correct as f64 / windows.len() as f64;
    assert!(acc > 0.55, "served accuracy {acc}");

    // Engine answers == row-at-a-time answers, window for window.
    for (w, &p) in windows.iter().zip(&outcome.predictions) {
        let row = Matrix::from_rows(std::slice::from_ref(&w.features)).unwrap();
        let x = normalizer.apply(&row);
        assert_eq!(model.predict(x.row(0)), p);
    }
}
