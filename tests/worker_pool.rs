//! Determinism contract of the persistent worker pool: every pool-backed
//! fan-out must be bit-identical to the scoped-spawn path it replaced, for
//! any thread count and any model family.
//!
//! Both backends split work with the one shared
//! [`boosthd::parallel::chunk_bounds`] function, so chunk composition —
//! and therefore floating-point reduction order — never depends on which
//! execution backend runs the chunks. These tests pin that contract.

use boosthd::classifier::predict_batch_chunked_with;
use boosthd::parallel::{chunk_bounds, parallel_map_indices_with, ExecBackend};
use boosthd::{
    BoostHd, BoostHdConfig, CentroidHd, CentroidHdConfig, Classifier, ModelSpec, OnlineHd,
    OnlineHdConfig, Pipeline,
};
use linalg::{Matrix, Rng64};

fn blobs(n: usize, features: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = Rng64::seed_from(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let class = i % classes;
        let center = class as f32 * 2.0 - 2.0;
        rows.push((0..features).map(|_| center + 0.5 * rng.normal()).collect());
        labels.push(class);
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

/// The thread counts the ISSUE pins: serial, the smallest real fan-out,
/// and heavy oversubscription on small CI boxes.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_backend_invariant<C: Classifier + Sync>(model: &C, x: &Matrix, family: &str) {
    let reference = model.predict_batch(x);
    for threads in THREAD_COUNTS {
        for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
            assert_eq!(
                predict_batch_chunked_with(model, x, threads, backend),
                reference,
                "{family}: threads={threads} backend={}",
                backend.tag()
            );
        }
    }
}

#[test]
fn predict_batch_is_bit_identical_across_backends_and_thread_counts() {
    let (x, y) = blobs(67, 12, 3, 11); // 67 rows: not divisible by any thread count
    let online = OnlineHd::fit(
        &OnlineHdConfig {
            dim: 512,
            epochs: 4,
            ..Default::default()
        },
        &x,
        &y,
    )
    .unwrap();
    assert_backend_invariant(&online, &x, "OnlineHD");
    assert_backend_invariant(&online.quantize(), &x, "bitpacked OnlineHD");
    assert_backend_invariant(&online.quantize_i8(), &x, "int8 OnlineHD");

    let boost = BoostHd::fit(
        &BoostHdConfig {
            dim_total: 600,
            n_learners: 6,
            epochs: 3,
            ..Default::default()
        },
        &x,
        &y,
    )
    .unwrap();
    assert_backend_invariant(&boost, &x, "BoostHD");

    let centroid = CentroidHd::fit(
        &CentroidHdConfig {
            dim: 256,
            ..Default::default()
        },
        &x,
        &y,
    )
    .unwrap();
    assert_backend_invariant(&centroid, &x, "CentroidHD");
}

#[test]
fn pipeline_confidence_path_is_backend_invariant() {
    let (x, y) = blobs(53, 8, 3, 23);
    let pipeline = Pipeline::fit(
        &ModelSpec::OnlineHd(OnlineHdConfig {
            dim: 384,
            epochs: 4,
            ..Default::default()
        }),
        &x,
        &y,
    )
    .unwrap()
    .with_abstain_threshold(0.4);
    let reference = pipeline.predict_batch_with_confidence(&x);
    for threads in THREAD_COUNTS {
        for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
            let got = pipeline.predict_batch_with_confidence_chunked(&x, threads, backend);
            assert_eq!(
                got.len(),
                reference.len(),
                "threads={threads} backend={}",
                backend.tag()
            );
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.class, b.class);
                assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
                assert_eq!(a.margin.to_bits(), b.margin.to_bits());
                assert_eq!(a.abstained, b.abstained);
            }
        }
    }
}

#[test]
fn chunk_bounds_are_shared_by_construction() {
    // Both backends must consume identical chunks: reconstruct each
    // backend's chunk list through the public fan-out and compare.
    for (count, workers) in [(1usize, 8usize), (7, 2), (64, 8), (67, 8), (100, 3)] {
        let collect = |backend: ExecBackend| -> Vec<(usize, usize)> {
            parallel_map_indices_with(backend, workers, workers, |w| {
                vec![chunk_bounds(count, workers, w)]
            })
            .into_iter()
            .flatten()
            .collect()
        };
        assert_eq!(
            collect(ExecBackend::Pooled),
            collect(ExecBackend::Scoped),
            "count={count} workers={workers}"
        );
    }
}
